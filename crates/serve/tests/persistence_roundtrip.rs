//! Persistence round-trip tests: save → load → identical estimates.
//!
//! The serving catalog trusts the shared sketch codec
//! (`opaq_storage::sketch_codec`) for spill, reload and warm starts, so this
//! suite pins the end-to-end property the satellite asks for: a sketch that
//! travels through the on-disk format answers *every* query identically —
//! structural equality plus estimate-by-estimate comparison — and damaged
//! files surface as typed errors, never as silently-different estimates.

use opaq_core::{OpaqConfig, QuantileSketch};
use opaq_datagen::{DatasetSpec, Distribution};
use opaq_parallel::ShardedOpaq;
use opaq_serve::{CatalogConfig, DatasetId, ServeError, SketchCatalog, TenantId};
use opaq_storage::{sketch_codec, MemRunStore, StorageError};
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "opaq-serve-roundtrip-{tag}-{}.sketch",
        std::process::id()
    ));
    p
}

fn sketch_for(spec: &DatasetSpec, threads: usize) -> QuantileSketch<u64> {
    let store = MemRunStore::new(spec.generate(), 2_000);
    let config = OpaqConfig::builder()
        .run_length(2_000)
        .sample_size(200)
        .build()
        .unwrap();
    ShardedOpaq::new(config, threads)
        .unwrap()
        .build_sketch(&store)
        .unwrap()
}

fn probe_phis() -> Vec<f64> {
    (0..=20).map(|i| i as f64 / 20.0).collect()
}

#[test]
fn save_load_preserves_every_estimate_across_distributions_and_threads() {
    let specs = [
        DatasetSpec {
            n: 40_000,
            distribution: Distribution::Uniform { domain: 1 << 31 },
            duplicate_fraction: 0.1,
            seed: 3,
        },
        DatasetSpec {
            n: 40_000,
            distribution: Distribution::Zipf {
                domain: 1 << 20,
                parameter: 0.86,
            },
            duplicate_fraction: 0.3,
            seed: 5,
        },
        DatasetSpec {
            n: 12_345, // tail run: gaps are non-uniform
            distribution: Distribution::ReverseSorted,
            duplicate_fraction: 0.0,
            seed: 7,
        },
    ];
    for (i, spec) in specs.iter().enumerate() {
        for threads in [1usize, 4] {
            let original = sketch_for(spec, threads);
            let path = temp_path(&format!("dist{i}-t{threads}"));
            sketch_codec::save(&path, &original.to_wire()).unwrap();
            let restored = QuantileSketch::from_wire(sketch_codec::load(&path).unwrap()).unwrap();
            std::fs::remove_file(&path).unwrap();

            assert_eq!(restored, original, "structural identity after round trip");
            for phi in probe_phis() {
                assert_eq!(
                    restored.estimate(phi).unwrap(),
                    original.estimate(phi).unwrap(),
                    "phi {phi} differs after round trip (spec {i}, threads {threads})"
                );
            }
            for key in [0u64, 1, 1 << 10, 1 << 20, 1 << 30, u64::MAX] {
                assert_eq!(restored.rank_bounds(key), original.rank_bounds(key));
            }
            assert_eq!(
                restored.estimate_q_quantiles(16).unwrap(),
                original.estimate_q_quantiles(16).unwrap()
            );
        }
    }
}

#[test]
fn catalog_spill_reload_preserves_estimates() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("opaq-serve-roundtrip-spill-{}", std::process::id()));
    let catalog = SketchCatalog::new(
        CatalogConfig::builder()
            .budget_sample_points(1) // evict everything but the hot entry
            .spill_dir(dir.clone())
            .build()
            .unwrap(),
    )
    .unwrap();

    let spec = DatasetSpec {
        n: 30_000,
        distribution: Distribution::Uniform { domain: 1 << 24 },
        duplicate_fraction: 0.2,
        seed: 11,
    };
    let originals: Vec<QuantileSketch<u64>> =
        (0..3).map(|t| sketch_for(&spec, 1 + t as usize)).collect();
    let ids: Vec<(TenantId, DatasetId)> = (0..3)
        .map(|t| (TenantId::new(format!("tenant{t}")), DatasetId::new("d")))
        .collect();
    for ((tenant, dataset), sketch) in ids.iter().zip(&originals) {
        catalog.publish(tenant, dataset, sketch.clone()).unwrap();
    }
    // With a 1-point budget every non-hot entry was spilled; each snapshot
    // below reloads from disk (possibly evicting its predecessor again).
    assert!(catalog.stats().evictions >= 2);
    for ((tenant, dataset), original) in ids.iter().zip(&originals) {
        let snap = catalog.snapshot(tenant, dataset).unwrap();
        assert_eq!(*snap.sketch, *original);
        for phi in probe_phis() {
            assert_eq!(
                snap.sketch.estimate(phi).unwrap(),
                original.estimate(phi).unwrap()
            );
        }
    }
    assert!(catalog.stats().reloads >= 2);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn warm_start_from_cli_persisted_file_serves_identically() {
    let spec = DatasetSpec {
        n: 25_000,
        distribution: Distribution::Uniform { domain: 1 << 28 },
        duplicate_fraction: 0.1,
        seed: 13,
    };
    let original = sketch_for(&spec, 2);
    let path = temp_path("warm");
    sketch_codec::save(&path, &original.to_wire()).unwrap();

    let catalog = SketchCatalog::unbounded();
    let (tenant, dataset) = (TenantId::new("warm"), DatasetId::new("d"));
    assert_eq!(catalog.load_persisted(&tenant, &dataset, &path).unwrap(), 1);
    let snap = catalog.snapshot(&tenant, &dataset).unwrap();
    assert_eq!(*snap.sketch, original);
    std::fs::remove_file(path).unwrap();
}

#[test]
fn damaged_files_surface_typed_errors_not_different_estimates() {
    let spec = DatasetSpec {
        n: 10_000,
        distribution: Distribution::Uniform { domain: 1 << 20 },
        duplicate_fraction: 0.1,
        seed: 17,
    };
    let original = sketch_for(&spec, 1);
    let clean = sketch_codec::to_bytes(&original.to_wire());
    let catalog = SketchCatalog::unbounded();
    let (tenant, dataset) = (TenantId::new("t"), DatasetId::new("d"));

    // Bit rot in the body: checksum failure.
    let mut corrupt = clean.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x10;
    let path = temp_path("corrupt");
    std::fs::write(&path, &corrupt).unwrap();
    let err = catalog
        .load_persisted(&tenant, &dataset, &path)
        .unwrap_err();
    assert!(
        matches!(&err, ServeError::Storage(StorageError::Corrupt(_))),
        "{err}"
    );

    // Future format version: typed mismatch.
    let mut future = clean.clone();
    future[7] = b'3';
    std::fs::write(&path, &future).unwrap();
    let err = catalog
        .load_persisted(&tenant, &dataset, &path)
        .unwrap_err();
    assert!(
        matches!(
            &err,
            ServeError::Storage(StorageError::VersionMismatch { found: b'3', .. })
        ),
        "{err}"
    );

    // Neither attempt published anything.
    assert!(!catalog.contains(&tenant, &dataset));
    std::fs::remove_file(path).unwrap();
}
