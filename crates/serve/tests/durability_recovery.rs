//! Crash-recovery coverage for the durable catalog: a restarted catalog
//! must rebuild the *exact* entries, versions and TTLs from the write-ahead
//! manifest, every served answer must be byte-for-byte identical to what
//! the pre-crash catalog served, and a crash at **any** byte of a manifest
//! append must recover cleanly to the last committed version.

use opaq_core::{IncrementalOpaq, OpaqConfig, QuantileSketch};
use opaq_serve::{
    CatalogConfig, DatasetId, Freshness, ServeError, SketchCatalog, TenantId, MANIFEST_FILE,
};
use opaq_storage::{sketch_codec, AppendFault, StorageError};
use std::path::PathBuf;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    let dir = std::env::temp_dir().join(format!(
        "opaq-durability-{tag}-{}-{nanos}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn sketch_of(range: std::ops::Range<u64>) -> QuantileSketch<u64> {
    let config = OpaqConfig::builder()
        .run_length(100)
        .sample_size(10)
        .build()
        .unwrap();
    let mut inc = IncrementalOpaq::new(config).unwrap();
    inc.add_run(range.collect()).unwrap();
    inc.into_sketch().unwrap()
}

fn durable(dir: &PathBuf) -> SketchCatalog {
    SketchCatalog::new(CatalogConfig::builder().data_dir(dir).build().unwrap()).unwrap()
}

fn key(t: &str, d: &str) -> (TenantId, DatasetId) {
    (TenantId::from(t), DatasetId::from(d))
}

/// The byte-for-byte identity used throughout: two sketches serve identical
/// answers iff their canonical wire encodings are identical.
fn wire_bytes(sketch: &QuantileSketch<u64>) -> Vec<u8> {
    sketch_codec::to_bytes(&sketch.to_wire())
}

#[test]
fn restart_rebuilds_exact_entries_versions_and_ttls() {
    let dir = temp_dir("rebuild");
    let (t0, d0) = key("tenant-0", "events");
    let (t1, d1) = key("tenant-1", "events");
    let (t2, d2) = key("tenant-2", "events");

    let expected_bytes;
    {
        let catalog = durable(&dir);
        // tenant-0 sees three versions; only the last must survive.
        catalog.publish(&t0, &d0, sketch_of(0..1000)).unwrap();
        catalog.publish(&t0, &d0, sketch_of(0..2000)).unwrap();
        assert_eq!(catalog.publish(&t0, &d0, sketch_of(0..3000)).unwrap(), 3);
        assert_eq!(catalog.publish(&t1, &d1, sketch_of(500..1500)).unwrap(), 1);
        assert_eq!(catalog.publish(&t2, &d2, sketch_of(0..700)).unwrap(), 2 - 1);
        // A TTL that is already expired the moment it applies: if it
        // survives the restart, the recovered entry reports Stale.
        catalog.set_ttl(&t1, &d1, Some(Duration::ZERO)).unwrap();
        expected_bytes = [
            wire_bytes(&catalog.snapshot(&t0, &d0).unwrap().sketch),
            wire_bytes(&catalog.snapshot(&t1, &d1).unwrap().sketch),
            wire_bytes(&catalog.snapshot(&t2, &d2).unwrap().sketch),
        ];
        assert_eq!(catalog.stats().recoveries, 0);
        // 5 publishes + 1 ttl-set.
        assert_eq!(catalog.stats().manifest_records, 6);
    } // "crash": the catalog drops with no orderly shutdown step.

    let recovered = durable(&dir);
    let report = recovered.recovery().expect("durable catalogs report");
    assert_eq!(report.entries, 3);
    assert_eq!(report.records_replayed, 6);
    assert_eq!(report.torn_tail_bytes, 0);
    assert_eq!(report.orphan_spills_removed, 0);
    let stats = recovered.stats();
    assert_eq!(stats.recoveries, 1);
    assert_eq!(stats.manifest_records, 6);
    assert_eq!(stats.entries, 3);

    // Exact versions, exact bytes.
    let s0 = recovered.snapshot(&t0, &d0).unwrap();
    assert_eq!(s0.version, 3);
    assert_eq!(wire_bytes(&s0.sketch), expected_bytes[0]);
    let s1 = recovered.snapshot(&t1, &d1).unwrap();
    assert_eq!(s1.version, 1);
    assert_eq!(wire_bytes(&s1.sketch), expected_bytes[1]);
    // The TTL survived: zero max-age reports stale immediately even though
    // the age clock restarted at recovery.
    assert_eq!(s1.freshness, Freshness::Stale);
    let s2 = recovered.snapshot(&t2, &d2).unwrap();
    assert_eq!(s2.version, 1);
    assert_eq!(wire_bytes(&s2.sketch), expected_bytes[2]);
    // Entries without a TTL are not born stale.
    assert_eq!(s0.freshness, Freshness::Fresh);

    // The version sequence continues where the log left off.
    assert_eq!(recovered.publish(&t0, &d0, sketch_of(0..4000)).unwrap(), 4);
    assert_eq!(recovered.snapshot(&t0, &d0).unwrap().version, 4);

    // And a third incarnation still agrees after the post-recovery publish.
    drop(recovered);
    let third = durable(&dir);
    assert_eq!(third.snapshot(&t0, &d0).unwrap().version, 4);
    assert_eq!(third.stats().recoveries, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_at_every_byte_of_a_manifest_append_recovers_the_committed_version() {
    // First, measure the full length of a publish record by letting the
    // fault keep everything: the record is then complete on disk, which is
    // the "commit landed, ack lost" case — recovery must serve the NEW
    // version even though the publisher saw an error.
    let probe_dir = temp_dir("fault-probe");
    let (t, d) = key("acme", "clicks");
    let v1 = sketch_of(0..1000);
    let v2 = sketch_of(0..2000);
    let record_len = {
        let catalog = durable(&probe_dir);
        catalog.publish(&t, &d, v1.clone()).unwrap();
        let before = std::fs::metadata(probe_dir.join(MANIFEST_FILE))
            .unwrap()
            .len();
        catalog.inject_manifest_fault(AppendFault::TornWrite {
            keep_bytes: usize::MAX,
        });
        catalog.publish(&t, &d, v2.clone()).unwrap_err();
        let after = std::fs::metadata(probe_dir.join(MANIFEST_FILE))
            .unwrap()
            .len();
        (after - before) as usize
    };
    assert!(record_len > 24, "publish record must outgrow its header");
    {
        let recovered = durable(&probe_dir);
        let snap = recovered.snapshot(&t, &d).unwrap();
        assert_eq!(snap.version, 2, "complete record on disk = committed");
        assert_eq!(wire_bytes(&snap.sketch), wire_bytes(&v2));
    }
    std::fs::remove_dir_all(&probe_dir).ok();

    // Now crash at every proper prefix of the append: the record never
    // commits, so recovery must serve version 1 byte-for-byte, truncate
    // exactly the torn bytes, and reap the unannounced sketch file.
    for keep in 0..record_len {
        let dir = temp_dir(&format!("fault-{keep}"));
        {
            let catalog = durable(&dir);
            catalog.publish(&t, &d, v1.clone()).unwrap();
            catalog.inject_manifest_fault(AppendFault::TornWrite { keep_bytes: keep });
            let err = catalog.publish(&t, &d, v2.clone()).unwrap_err();
            assert!(err.to_string().contains("injected"), "keep {keep}: {err}");
            // The failed publish keeps serving the old version.
            let snap = catalog.snapshot(&t, &d).unwrap();
            assert_eq!(snap.version, 1, "keep {keep}");
            assert_eq!(wire_bytes(&snap.sketch), wire_bytes(&v1), "keep {keep}");
        } // crash

        let recovered = durable(&dir);
        let report = recovered.recovery().unwrap();
        assert_eq!(report.torn_tail_bytes, keep as u64, "keep {keep}");
        assert_eq!(report.entries, 1, "keep {keep}");
        let snap = recovered.snapshot(&t, &d).unwrap();
        assert_eq!(snap.version, 1, "keep {keep}");
        assert_eq!(wire_bytes(&snap.sketch), wire_bytes(&v1), "keep {keep}");
        // The next publish retries the same version number and succeeds.
        assert_eq!(recovered.publish(&t, &d, v2.clone()).unwrap(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn orphaned_sketch_files_are_reaped_and_counted_never_leaked() {
    let dir = temp_dir("orphans");
    let (t, d) = key("acme", "clicks");
    {
        let catalog = durable(&dir);
        catalog.publish(&t, &d, sketch_of(0..1000)).unwrap();
    }
    // A crash between "sketch synced" and "manifest appended" leaves files
    // no record references.  Fake two of them (one valid sketch, one junk —
    // adoption is decided by the manifest, not by file contents) plus a
    // non-sketch file that must be left alone.
    sketch_codec::save(
        dir.join("acme--clicks--deadbeef--v9.sketch"),
        &sketch_of(0..10).to_wire(),
    )
    .unwrap();
    std::fs::write(dir.join("stray.sketch"), b"not a sketch at all").unwrap();
    std::fs::write(dir.join("notes.txt"), b"operator scribbles").unwrap();

    let recovered = durable(&dir);
    let report = recovered.recovery().unwrap();
    assert_eq!(report.orphan_spills_removed, 2);
    assert_eq!(recovered.stats().orphan_spills_removed, 2);
    assert_eq!(report.entries, 1);
    // The live entry still serves; the orphans are gone; the stranger file
    // survived.
    assert_eq!(recovered.snapshot(&t, &d).unwrap().version, 1);
    assert!(!dir.join("acme--clicks--deadbeef--v9.sketch").exists());
    assert!(!dir.join("stray.sketch").exists());
    assert!(dir.join("notes.txt").exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn damaged_manifest_records_are_typed_corruption_not_silent_loss() {
    let dir = temp_dir("corrupt");
    let (t, d) = key("acme", "clicks");
    {
        let catalog = durable(&dir);
        catalog.publish(&t, &d, sketch_of(0..1000)).unwrap();
    }
    // Flip one bit inside the record body: replay must refuse with a typed
    // Corrupt error instead of rebuilding a guessed catalog.
    let manifest_path = dir.join(MANIFEST_FILE);
    let mut bytes = std::fs::read(&manifest_path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&manifest_path, &bytes).unwrap();
    let err = SketchCatalog::new(CatalogConfig::builder().data_dir(&dir).build().unwrap())
        .map(|_| ())
        .unwrap_err();
    assert!(
        matches!(err, ServeError::Storage(StorageError::Corrupt(_))),
        "{err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn durable_eviction_is_a_persistence_tier_not_a_rewrite() {
    let dir = temp_dir("evict");
    // Budget of one 100-point sketch, durable mode: eviction logs a record
    // and drops residency; the publish-time file keeps serving.
    let catalog = SketchCatalog::new(
        CatalogConfig::builder()
            .budget_sample_points(100)
            .data_dir(&dir)
            .build()
            .unwrap(),
    )
    .unwrap();
    let (a, da) = key("a", "data");
    let (b, db) = key("b", "data");
    catalog.publish(&a, &da, sketch_of(0..1000)).unwrap();
    catalog.publish(&b, &db, sketch_of(0..1000)).unwrap(); // evicts a
    let stats = catalog.stats();
    assert_eq!(stats.evictions, 1, "{stats:?}");
    // 2 publishes + 1 evict record.
    assert_eq!(stats.manifest_records, 3, "{stats:?}");
    // Reloading an evicted durable entry keeps its file (it IS the entry's
    // persistence), and re-eviction needs no rewrite.
    let reference = wire_bytes(&sketch_of(0..1000));
    assert_eq!(
        wire_bytes(&catalog.snapshot(&a, &da).unwrap().sketch),
        reference
    );
    assert_eq!(
        wire_bytes(&catalog.snapshot(&b, &db).unwrap().sketch),
        reference
    );
    assert!(catalog.stats().reloads >= 1);

    // A restart after all that churn still rebuilds both entries exactly.
    drop(catalog);
    let recovered = SketchCatalog::new(
        CatalogConfig::builder()
            .budget_sample_points(100)
            .data_dir(&dir)
            .build()
            .unwrap(),
    )
    .unwrap();
    assert_eq!(recovered.recovery().unwrap().entries, 2);
    assert_eq!(
        wire_bytes(&recovered.snapshot(&a, &da).unwrap().sketch),
        reference
    );
    assert_eq!(
        wire_bytes(&recovered.snapshot(&b, &db).unwrap().sketch),
        reference
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn data_dir_and_spill_dir_are_mutually_exclusive() {
    let err = CatalogConfig::builder()
        .data_dir("/tmp/opaq-dd")
        .spill_dir("/tmp/opaq-spill")
        .build()
        .unwrap_err();
    assert!(matches!(err, ServeError::InvalidConfig(_)), "{err}");
    // But a budget with only a data dir is fine: the data dir is the tier.
    CatalogConfig::builder()
        .budget_sample_points(100)
        .data_dir("/tmp/opaq-dd")
        .build()
        .unwrap();
}
