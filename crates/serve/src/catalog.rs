//! The versioned, multi-tenant sketch catalog.
//!
//! A [`SketchCatalog`] maps `(tenant, dataset)` to an immutable
//! `Arc<QuantileSketch<u64>>` snapshot tagged with a monotonically increasing
//! **version** (the entry's epoch).  The concurrency discipline:
//!
//! * **Writers build outside, swap inside.**  A refresh builds its sketch
//!   with no catalog locks held; [`SketchCatalog::publish`] then takes the
//!   entry's write lock only to swap one `Arc` and bump the version.  The
//!   critical section is a pointer assignment, so even a publish storm
//!   cannot stall readers for longer than that.
//! * **Readers snapshot, then compute.**  [`SketchCatalog::snapshot`] clones
//!   the `Arc` under the entry's read lock and releases it; all quantile
//!   work happens on the reader's own snapshot.  A snapshot is therefore
//!   always a *complete* published version — there is no observable state in
//!   which part of a new sketch has replaced part of an old one — and it
//!   stays valid (and allocated) for as long as the reader holds it, no
//!   matter how many newer versions land meanwhile.
//! * **Cold tenants spill, hot tenants stay.**  With a configured budget
//!   (in sample points, the paper's `r·s` memory unit) the catalog evicts
//!   least-recently-touched entries to disk through
//!   [`opaq_storage::sketch_codec`] and reloads them transparently on the
//!   next query, re-validating checksum and sketch invariants on the way in.
//! * **TTL is stale-while-refresh, never stale-and-block.**  An entry may
//!   carry a `max_age` (per entry via [`SketchCatalog::set_ttl`], or a
//!   catalog-wide [`CatalogConfig::default_max_age`]).  An expired entry
//!   keeps serving its last complete version; the snapshot is merely tagged
//!   ([`Freshness::Stale`], or [`Freshness::Refreshing`] once the first
//!   expired access has routed the entry to the installed refresh hook —
//!   at most one in-flight refresh per entry).  The next publish resets the
//!   clock and the tag in the same step.

use crate::{ServeError, ServeResult};
use opaq_core::QuantileSketch;
use opaq_storage::manifest::{self, AppendFault, ManifestRecord, ManifestWriter};
use opaq_storage::sketch_codec;
use parking_lot::{Mutex, RwLock};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifies one tenant of the serving layer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(String);

/// Identifies one dataset within a tenant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DatasetId(String);

macro_rules! impl_id {
    ($ty:ident) => {
        impl $ty {
            /// Create an id from any string-like value.
            pub fn new(id: impl Into<String>) -> Self {
                Self(id.into())
            }

            /// The id as a string slice.
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $ty {
            fn from(id: &str) -> Self {
                Self(id.to_string())
            }
        }

        impl From<String> for $ty {
            fn from(id: String) -> Self {
                Self(id)
            }
        }

        // Lets the nested catalog maps be probed with `&str`, so the
        // per-query lookup path allocates nothing.  Consistent with the
        // derived `Hash`/`Eq`: a newtype over `String` hashes exactly like
        // the `str` it borrows as.
        impl std::borrow::Borrow<str> for $ty {
            fn borrow(&self) -> &str {
                &self.0
            }
        }
    };
}

impl_id!(TenantId);
impl_id!(DatasetId);

type CatalogKey = (TenantId, DatasetId);

/// Age-based staleness of a served snapshot relative to its entry's TTL.
///
/// Staleness is *stale-while-refresh*: an expired entry keeps serving its
/// last complete version (readers are never blocked and never see an error
/// just because data aged out) — the tag tells the caller how old the answer
/// is, and whether a replacement is already being built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Freshness {
    /// The snapshot is within its entry's `max_age` (or the entry has no
    /// TTL configured).
    Fresh,
    /// The snapshot outlived its `max_age` and no background refresh is in
    /// flight (no refresh hook installed, or the previous refresh aborted).
    Stale,
    /// The snapshot outlived its `max_age` and a background refresh is in
    /// flight; the entry keeps serving this version until the new one is
    /// published with the usual epoch swap.
    Refreshing,
}

impl Freshness {
    /// Stable lower-case wire form (`fresh` / `stale` / `refreshing`),
    /// carried verbatim in the HTTP `X-Opaq-Freshness` response header.
    pub fn as_str(self) -> &'static str {
        match self {
            Freshness::Fresh => "fresh",
            Freshness::Stale => "stale",
            Freshness::Refreshing => "refreshing",
        }
    }

    /// Parse the wire form produced by [`Freshness::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fresh" => Some(Freshness::Fresh),
            "stale" => Some(Freshness::Stale),
            "refreshing" => Some(Freshness::Refreshing),
            _ => None,
        }
    }
}

impl fmt::Display for Freshness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Called (at most once per expiry) when a snapshot finds its entry past
/// `max_age`; typically submits a re-ingest to a `RefreshPool`.  Returns
/// whether a refresh really is in flight now: `false` (pool gone, submit
/// rejected) clears the in-flight flag again, so the entry reports
/// [`Freshness::Stale`] and a later snapshot may re-try the hook.
pub type RefreshHook = Box<dyn Fn(&TenantId, &DatasetId) -> bool + Send + Sync>;

/// How a [`SketchSnapshot`] was served — the provenance a request trace
/// records for each catalog access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotOrigin {
    /// Served from the resident in-memory slot.
    #[default]
    Hit,
    /// The entry had been evicted; this access reloaded it from its disk
    /// spill (checksum-validated) on the query path.
    ReloadFromSpill,
}

impl SnapshotOrigin {
    /// Stable lower-case wire label.
    pub fn as_str(self) -> &'static str {
        match self {
            SnapshotOrigin::Hit => "hit",
            SnapshotOrigin::ReloadFromSpill => "reload-from-spill",
        }
    }
}

/// One complete published version of an entry's sketch.  Cheap to clone
/// (an `Arc` bump); queries run against the snapshot with no catalog locks.
#[derive(Debug, Clone)]
pub struct SketchSnapshot {
    /// The entry's epoch this snapshot belongs to (1 for the first publish).
    pub version: u64,
    /// The immutable sketch of that version.
    pub sketch: Arc<QuantileSketch<u64>>,
    /// Whether the version is within its TTL at the time of the snapshot.
    pub freshness: Freshness,
    /// Whether the snapshot hit the resident slot or reloaded a spill.
    pub origin: SnapshotOrigin,
    /// Whether *this* access was the one that fired the TTL refresh hook
    /// (at most one access per expiry wins that race).
    pub refresh_triggered: bool,
}

/// One row of [`SketchCatalog::inventory`]: a published entry and its
/// current version — the unit of the catalog's version vector.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct InventoryEntry {
    /// Tenant identifier, as raw string for wire encoding.
    pub tenant: String,
    /// Dataset identifier, as raw string for wire encoding.
    pub dataset: String,
    /// The entry's current version epoch.
    pub version: u64,
}

/// Where an entry's current version lives.
#[derive(Debug)]
enum Slot {
    /// In memory, servable with an `Arc` clone.
    Resident {
        version: u64,
        sketch: Arc<QuantileSketch<u64>>,
        /// In durable mode, the synced on-disk copy of this exact version
        /// (written before the manifest record that announced it).  Eviction
        /// then drops residency without rewriting anything — the spill tier
        /// *is* the persistence tier.  `None` in memory-only catalogs.
        disk: Option<PathBuf>,
    },
    /// Evicted to a sketch file; reloaded (and re-validated) on next access.
    Spilled { version: u64, path: PathBuf },
}

/// Sentinel for "no TTL configured" in [`Entry::ttl_nanos`].
const NO_TTL: u64 = u64::MAX;

#[derive(Debug)]
struct Entry {
    slot: RwLock<Slot>,
    /// Logical LRU timestamp (catalog clock tick of the last access).
    last_touch: AtomicU64,
    /// Wall-clock nanos (relative to the catalog's epoch instant) of the
    /// last publish; drives TTL expiry.
    published_at_nanos: AtomicU64,
    /// The entry's `max_age` in nanos ([`NO_TTL`] = never expires).
    ttl_nanos: AtomicU64,
    /// Whether a background refresh triggered by TTL expiry is in flight.
    /// Set by the snapshot that fires the refresh hook, cleared by the next
    /// publish (or by [`SketchCatalog::refresh_aborted`] on failure).
    refreshing: AtomicBool,
}

/// Configuration of a [`SketchCatalog`].
///
/// Marked `#[non_exhaustive]`: construct it with [`CatalogConfig::builder`]
/// (or start from [`CatalogConfig::default`]), so future knobs can land
/// without breaking downstream construction sites.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct CatalogConfig {
    /// Maximum resident sample points across all entries; `None` = unbounded.
    /// The most-recently-used entry is never evicted, so a budget smaller
    /// than a single sketch degenerates to "keep exactly the hot entry".
    pub budget_sample_points: Option<u64>,
    /// Directory to spill evicted sketches into (required when a budget is
    /// set and no [`Self::data_dir`] is configured; created on catalog
    /// construction if missing).
    pub spill_dir: Option<PathBuf>,
    /// Default `max_age` applied to every new entry (overridable per entry
    /// with [`SketchCatalog::set_ttl`]); `None` = entries never expire.
    pub default_max_age: Option<Duration>,
    /// Durable mode: directory holding the write-ahead manifest
    /// ([`MANIFEST_FILE`]) plus one synced sketch file per published
    /// version.  Every publish/evict/TTL change appends a manifest record
    /// *before* the in-memory epoch swap, and a catalog constructed over an
    /// existing data dir replays the log to rebuild the exact entries,
    /// versions and TTLs.  Mutually exclusive with [`Self::spill_dir`]: the
    /// data dir already persists every entry, so it doubles as the spill
    /// tier.
    pub data_dir: Option<PathBuf>,
}

/// File name of the write-ahead publication log inside
/// [`CatalogConfig::data_dir`].
pub const MANIFEST_FILE: &str = "catalog.manifest";

impl CatalogConfig {
    /// Start building a validated configuration.
    pub fn builder() -> CatalogConfigBuilder {
        CatalogConfigBuilder::default()
    }
}

/// Builder for [`CatalogConfig`] — see [`CatalogConfig::builder`].
#[derive(Debug, Clone, Default)]
pub struct CatalogConfigBuilder {
    config: CatalogConfig,
}

impl CatalogConfigBuilder {
    /// Cap resident sample points across all entries (must be positive;
    /// requires [`Self::spill_dir`]).
    pub fn budget_sample_points(mut self, budget: u64) -> Self {
        self.config.budget_sample_points = Some(budget);
        self
    }

    /// Directory to spill evicted sketches into.
    pub fn spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.spill_dir = Some(dir.into());
        self
    }

    /// Default `max_age` for every new entry.
    pub fn default_max_age(mut self, max_age: Duration) -> Self {
        self.config.default_max_age = Some(max_age);
        self
    }

    /// Durable mode: write-ahead manifest plus per-version sketch files in
    /// `dir`, replayed on construction — see [`CatalogConfig::data_dir`].
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.data_dir = Some(dir.into());
        self
    }

    /// Validate and produce the configuration.
    ///
    /// # Errors
    /// [`ServeError::InvalidConfig`] for a zero eviction budget, a budget
    /// with nowhere to evict to, or a spill directory alongside a data
    /// directory (the same checks [`SketchCatalog::new`] enforces, surfaced
    /// before a catalog is ever constructed).
    pub fn build(self) -> ServeResult<CatalogConfig> {
        validate_config(&self.config)?;
        Ok(self.config)
    }
}

fn validate_config(config: &CatalogConfig) -> ServeResult<()> {
    if config.budget_sample_points == Some(0) {
        return Err(ServeError::InvalidConfig(
            "eviction budget must be positive (omit it for an unbounded catalog)".into(),
        ));
    }
    if config.budget_sample_points.is_some()
        && config.spill_dir.is_none()
        && config.data_dir.is_none()
    {
        return Err(ServeError::InvalidConfig(
            "an eviction budget requires a spill directory or a durable data directory".into(),
        ));
    }
    if config.spill_dir.is_some() && config.data_dir.is_some() {
        return Err(ServeError::InvalidConfig(
            "a data directory already persists every entry and doubles as the spill tier; drop \
             the separate spill directory"
                .into(),
        ));
    }
    Ok(())
}

/// Monotonic counters describing what a catalog has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CatalogStats {
    /// Number of versions published (across all entries).
    pub publishes: u64,
    /// Number of snapshots handed out.
    pub snapshots: u64,
    /// Number of entries evicted to disk.
    pub evictions: u64,
    /// Number of entries reloaded from disk.
    pub reloads: u64,
    /// Number of eviction attempts whose spill write failed (the victim
    /// stayed resident; the triggering publish/read still succeeded).
    pub spill_failures: u64,
    /// Number of snapshots served past their TTL (tagged `stale` or
    /// `refreshing`).
    pub stale_snapshots: u64,
    /// Number of background refreshes triggered by TTL expiry (refresh-hook
    /// invocations).
    pub ttl_refreshes: u64,
    /// Number of entries currently in the catalog (resident or spilled).
    pub entries: u64,
    /// Sample points currently held in memory.
    pub resident_sample_points: u64,
    /// Number of times this catalog rebuilt itself from an existing
    /// manifest (0 for a fresh data dir or a memory-only catalog; 1 after a
    /// restart recovery — the counter is per catalog instance).
    pub recoveries: u64,
    /// Manifest records backing the catalog: records replayed at recovery
    /// plus records appended since (0 in memory-only catalogs).
    pub manifest_records: u64,
    /// Orphaned sketch files found at recovery (present in the data dir but
    /// absent from the manifest — the residue of a crash between sketch
    /// write and manifest append) and deleted rather than silently leaked.
    pub orphan_spills_removed: u64,
}

/// What a durable catalog rebuilt from its data directory at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Entries restored from the manifest.
    pub entries: u64,
    /// Complete manifest records replayed.
    pub records_replayed: u64,
    /// Bytes of incomplete record truncated from the manifest tail (the
    /// residue of a crash mid-append; 0 for a clean shutdown).
    pub torn_tail_bytes: u64,
    /// Orphaned sketch files deleted — see
    /// [`CatalogStats::orphan_spills_removed`].
    pub orphan_spills_removed: u64,
}

#[derive(Debug, Default)]
struct StatsInner {
    publishes: AtomicU64,
    snapshots: AtomicU64,
    evictions: AtomicU64,
    reloads: AtomicU64,
    spill_failures: AtomicU64,
    stale_snapshots: AtomicU64,
    ttl_refreshes: AtomicU64,
    manifest_records: AtomicU64,
}

/// The versioned multi-tenant sketch catalog.  See the module docs for the
/// locking discipline; all methods take `&self` and are safe to call from
/// any number of threads.
pub struct SketchCatalog {
    /// Nested rather than tuple-keyed so lookups borrow `&str` and the
    /// per-query path performs no allocation.
    entries: RwLock<HashMap<TenantId, HashMap<DatasetId, Arc<Entry>>>>,
    clock: AtomicU64,
    resident_points: AtomicU64,
    config: CatalogConfig,
    stats: StatsInner,
    /// Monotonic origin for `published_at_nanos` timestamps.
    epoch: Instant,
    /// Invoked when a snapshot finds its entry past `max_age`.
    refresh_hook: RwLock<Option<RefreshHook>>,
    /// Durable mode: the write-ahead log every publish/evict/TTL change
    /// appends to (synced) before the in-memory swap.
    manifest: Option<Mutex<ManifestWriter>>,
    /// What construction rebuilt from an existing data dir, if anything.
    recovery: Option<RecoveryReport>,
    /// 1 when construction replayed a pre-existing manifest.
    recoveries: u64,
}

impl fmt::Debug for SketchCatalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SketchCatalog")
            .field("entries", &self.len())
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl SketchCatalog {
    /// Create a catalog.  With [`CatalogConfig::data_dir`] set, an existing
    /// manifest is replayed (truncating any torn tail a crash left) and the
    /// catalog rebuilds its exact entries, versions and TTLs; every restored
    /// entry starts memory-cold ([`Slot::Spilled`]) and reloads on first
    /// access.  Restored TTLs are measured from recovery time — the
    /// original publish instant does not survive a restart, so an entry is
    /// never *born* stale.  Orphaned sketch files (on disk but absent from
    /// the manifest) are deleted and counted, never silently leaked.
    ///
    /// # Errors
    /// [`ServeError::InvalidConfig`] for the invalid shapes
    /// [`CatalogConfigBuilder::build`] rejects; typed
    /// [`opaq_storage::StorageError::Corrupt`] /
    /// [`opaq_storage::StorageError::VersionMismatch`] for a damaged
    /// manifest record; I/O errors from the directories or the log.
    pub fn new(config: CatalogConfig) -> ServeResult<Self> {
        validate_config(&config)?;
        if let Some(dir) = &config.spill_dir {
            std::fs::create_dir_all(dir).map_err(opaq_storage::StorageError::Io)?;
        }

        let mut entries = HashMap::<TenantId, HashMap<DatasetId, Arc<Entry>>>::new();
        let mut manifest_writer = None;
        let mut recovery = None;
        let mut recoveries = 0;
        let mut replayed_records = 0;
        if let Some(dir) = &config.data_dir {
            std::fs::create_dir_all(dir).map_err(opaq_storage::StorageError::Io)?;
            let manifest_path = dir.join(MANIFEST_FILE);
            let had_history = manifest_path.exists();
            let replayed = manifest::replay_and_truncate(&manifest_path)?;

            // Fold the log into per-entry truth: the last Publish wins the
            // version and file, later TtlSet records override the TTL, and
            // Evict records change nothing recovery cares about (the entry
            // is restored memory-cold either way).
            let mut state = BTreeMap::<(String, String), (u64, u64, String)>::new();
            for record in &replayed.records {
                match record {
                    ManifestRecord::Publish {
                        tenant,
                        dataset,
                        version,
                        ttl_nanos,
                        sketch_file,
                    } => {
                        state.insert(
                            (tenant.clone(), dataset.clone()),
                            (*version, *ttl_nanos, sketch_file.clone()),
                        );
                    }
                    ManifestRecord::Evict { .. } => {}
                    ManifestRecord::TtlSet {
                        tenant,
                        dataset,
                        ttl_nanos,
                    } => {
                        if let Some((_, ttl, _)) = state.get_mut(&(tenant.clone(), dataset.clone()))
                        {
                            *ttl = *ttl_nanos;
                        }
                    }
                }
            }

            let mut live_files = HashSet::new();
            for ((tenant, dataset), (version, ttl_nanos, sketch_file)) in state {
                live_files.insert(sketch_file.clone());
                entries.entry(TenantId::from(tenant)).or_default().insert(
                    DatasetId::from(dataset),
                    Arc::new(Entry {
                        slot: RwLock::new(Slot::Spilled {
                            version,
                            path: dir.join(&sketch_file),
                        }),
                        last_touch: AtomicU64::new(0),
                        published_at_nanos: AtomicU64::new(0),
                        ttl_nanos: AtomicU64::new(ttl_nanos),
                        refreshing: AtomicBool::new(false),
                    }),
                );
            }

            // Orphan scan: a crash between "sketch file synced" and
            // "manifest record appended" leaves a file no record points at.
            // Reap it (and count it) instead of leaking it forever.
            let mut orphans_removed = 0;
            let listing = std::fs::read_dir(dir).map_err(opaq_storage::StorageError::Io)?;
            for dir_entry in listing.flatten() {
                let path = dir_entry.path();
                let is_sketch = path.extension().is_some_and(|ext| ext == "sketch");
                let name = dir_entry.file_name();
                let adopted = name.to_str().is_some_and(|n| live_files.contains(n));
                if is_sketch && !adopted && std::fs::remove_file(&path).is_ok() {
                    orphans_removed += 1;
                }
            }

            let restored = entries.values().map(HashMap::len).sum::<usize>() as u64;
            replayed_records = replayed.records.len() as u64;
            recoveries = u64::from(had_history);
            recovery = Some(RecoveryReport {
                entries: restored,
                records_replayed: replayed_records,
                torn_tail_bytes: replayed.torn_tail_bytes,
                orphan_spills_removed: orphans_removed,
            });
            manifest_writer = Some(Mutex::new(ManifestWriter::open(manifest_path)?));
        }

        let stats = StatsInner::default();
        stats
            .manifest_records
            .store(replayed_records, Ordering::Relaxed);
        Ok(Self {
            entries: RwLock::new(entries),
            clock: AtomicU64::new(0),
            resident_points: AtomicU64::new(0),
            config,
            stats,
            epoch: Instant::now(),
            refresh_hook: RwLock::new(None),
            manifest: manifest_writer,
            recovery,
            recoveries,
        })
    }

    /// What construction rebuilt from an existing data directory; `None`
    /// for memory-only catalogs.
    pub fn recovery(&self) -> Option<RecoveryReport> {
        self.recovery
    }

    /// Arm a one-shot fault on the next manifest append — test
    /// instrumentation for crash-recovery coverage (no-op in memory-only
    /// catalogs).
    pub fn inject_manifest_fault(&self, fault: AppendFault) {
        if let Some(manifest) = &self.manifest {
            manifest.lock().inject_fault(fault);
        }
    }

    /// Append one record to the write-ahead log (durable mode only),
    /// syncing before return — the fsync point publication correctness
    /// hangs on.
    fn manifest_append(&self, record: &ManifestRecord) -> ServeResult<()> {
        if let Some(manifest) = &self.manifest {
            manifest.lock().append(record)?;
            self.stats.manifest_records.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Create an unbounded in-memory catalog (no eviction).
    pub fn unbounded() -> Self {
        Self::new(CatalogConfig::default()).expect("default config is valid")
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn touch(&self, entry: &Entry) {
        entry.last_touch.store(self.tick(), Ordering::Relaxed);
    }

    /// Nanoseconds since the catalog's epoch instant (saturating at u64).
    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Install the hook fired (once per expiry) when a snapshot finds an
    /// entry past its `max_age`.  The hook runs on the snapshotting thread
    /// and must be cheap — typically a `RefreshPool::submit_ingest` — and
    /// must not call back into a catalog method that takes the same entry's
    /// write lock synchronously.
    pub fn set_refresh_hook(&self, hook: RefreshHook) {
        *self.refresh_hook.write() = Some(hook);
    }

    /// Set (or clear, with `None`) the `max_age` of one entry.  Takes effect
    /// on the next snapshot; the age is measured from the entry's last
    /// publish.
    ///
    /// # Errors
    /// [`ServeError::UnknownEntry`] if nothing was ever published for the key.
    pub fn set_ttl(
        &self,
        tenant: &TenantId,
        dataset: &DatasetId,
        max_age: Option<Duration>,
    ) -> ServeResult<()> {
        let entry = self
            .entry(tenant, dataset)
            .ok_or_else(|| ServeError::UnknownEntry {
                tenant: tenant.clone(),
                dataset: dataset.clone(),
            })?;
        let nanos = max_age.map_or(NO_TTL, |age| {
            (age.as_nanos().min(u64::MAX as u128) as u64).min(NO_TTL - 1)
        });
        // Durable mode: announce the change before applying it, so a
        // restart rebuilds the same TTL.
        self.manifest_append(&ManifestRecord::TtlSet {
            tenant: tenant.as_str().to_owned(),
            dataset: dataset.as_str().to_owned(),
            ttl_nanos: nanos,
        })?;
        entry.ttl_nanos.store(nanos, Ordering::Relaxed);
        Ok(())
    }

    /// Tell the catalog that a TTL-triggered background refresh gave up
    /// (build or publish failed), so the next expired snapshot may trigger
    /// another one instead of reporting `refreshing` forever.
    pub fn refresh_aborted(&self, tenant: &TenantId, dataset: &DatasetId) {
        if let Some(entry) = self.entry(tenant, dataset) {
            entry.refreshing.store(false, Ordering::Release);
        }
    }

    /// Classify `entry`'s age and fire the refresh hook on the first expired
    /// snapshot.  Runs with no slot lock held: the fields involved are all
    /// atomics, and serving a (possibly just-superseded) tag is harmless.
    /// The second return is whether *this* call fired the refresh hook —
    /// provenance the snapshot carries so a request trace can show which
    /// access paid for the refresh submission.
    fn classify_freshness(
        &self,
        entry: &Entry,
        tenant: &TenantId,
        dataset: &DatasetId,
    ) -> (Freshness, bool) {
        let ttl = entry.ttl_nanos.load(Ordering::Relaxed);
        if ttl == NO_TTL {
            return (Freshness::Fresh, false);
        }
        let age = self
            .now_nanos()
            .saturating_sub(entry.published_at_nanos.load(Ordering::Relaxed));
        if age <= ttl {
            return (Freshness::Fresh, false);
        }
        self.stats.stale_snapshots.fetch_add(1, Ordering::Relaxed);
        if entry.refreshing.load(Ordering::Acquire) {
            return (Freshness::Refreshing, false);
        }
        let hook = self.refresh_hook.read();
        let Some(hook) = hook.as_ref() else {
            return (Freshness::Stale, false);
        };
        // Exactly one expired snapshot wins the CAS and routes the entry to
        // the refresh pipeline; the publish it eventually produces clears
        // the flag (and resets the publish timestamp) in one step.  A hook
        // that could not actually start a refresh (pool shut down or gone)
        // hands the flag back, so the entry degrades to `stale` instead of
        // claiming `refreshing` forever.
        if entry
            .refreshing
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            if !hook(tenant, dataset) {
                entry.refreshing.store(false, Ordering::Release);
                return (Freshness::Stale, false);
            }
            self.stats.ttl_refreshes.fetch_add(1, Ordering::Relaxed);
            return (Freshness::Refreshing, true);
        }
        (Freshness::Refreshing, false)
    }

    fn entry(&self, tenant: &TenantId, dataset: &DatasetId) -> Option<Arc<Entry>> {
        self.entries
            .read()
            .get(tenant.as_str())?
            .get(dataset.as_str())
            .cloned()
    }

    fn entry_or_create(&self, tenant: &TenantId, dataset: &DatasetId) -> Arc<Entry> {
        if let Some(entry) = self.entry(tenant, dataset) {
            return entry;
        }
        let mut entries = self.entries.write();
        Arc::clone(
            entries
                .entry(tenant.clone())
                .or_default()
                .entry(dataset.clone())
                .or_insert_with(|| {
                    Arc::new(Entry {
                        // Placeholder until the caller's publish overwrites
                        // it; version 0 is never observable because entries
                        // are only created on the publish path below.
                        slot: RwLock::new(Slot::Resident {
                            version: 0,
                            sketch: Arc::new(placeholder_sketch()),
                            disk: None,
                        }),
                        last_touch: AtomicU64::new(0),
                        published_at_nanos: AtomicU64::new(0),
                        ttl_nanos: AtomicU64::new(
                            self.config.default_max_age.map_or(NO_TTL, |age| {
                                (age.as_nanos().min(u64::MAX as u128) as u64).min(NO_TTL - 1)
                            }),
                        ),
                        refreshing: AtomicBool::new(false),
                    })
                }),
        )
    }

    /// Publish `sketch` as the next version of `(tenant, dataset)` and
    /// return that version.  The swap is an epoch bump: concurrent readers
    /// keep whatever complete version they already snapshotted.
    pub fn publish(
        &self,
        tenant: &TenantId,
        dataset: &DatasetId,
        sketch: QuantileSketch<u64>,
    ) -> ServeResult<u64> {
        self.publish_arc(tenant, dataset, Arc::new(sketch))
    }

    /// [`Self::publish`] for an already-shared sketch.
    ///
    /// In durable mode the swap is write-ahead: the new version's sketch
    /// file is written and synced, then the manifest record is appended and
    /// synced, and only then does the in-memory slot change.  A failure at
    /// either disk step fails the publish with the old version fully intact
    /// — recovery can never observe a version the log does not announce.
    pub fn publish_arc(
        &self,
        tenant: &TenantId,
        dataset: &DatasetId,
        sketch: Arc<QuantileSketch<u64>>,
    ) -> ServeResult<u64> {
        self.publish_inner(tenant, dataset, sketch, None)
    }

    /// Publish `sketch` at an *explicit* version instead of the next local
    /// one — the replication path: a replica applying a peer's entry must
    /// end up serving the peer's exact version number, or the cross-replica
    /// byte-for-byte verifier would flag every failover answer as
    /// mis-versioned.  The offered version must move the entry forward.
    ///
    /// # Errors
    /// [`ServeError::StaleVersion`] if `version` is not strictly greater
    /// than the entry's current version (version vectors never move
    /// backwards); otherwise as for [`Self::publish`].
    pub fn publish_at(
        &self,
        tenant: &TenantId,
        dataset: &DatasetId,
        sketch: QuantileSketch<u64>,
        version: u64,
    ) -> ServeResult<u64> {
        self.publish_inner(tenant, dataset, Arc::new(sketch), Some(version))
    }

    fn publish_inner(
        &self,
        tenant: &TenantId,
        dataset: &DatasetId,
        sketch: Arc<QuantileSketch<u64>>,
        forced_version: Option<u64>,
    ) -> ServeResult<u64> {
        let new_points = sketch.len() as u64;
        let entry = self.entry_or_create(tenant, dataset);
        let version = {
            // Everything touching this entry — slot state, spill files, its
            // share of `resident_points` — mutates under its slot lock.
            // Moving the counter updates outside would let an eviction sweep
            // interleave between swap and subtract and transiently wrap the
            // u64 counter, which `enforce_budget` would read as "spill the
            // whole catalog".
            let mut slot = entry.slot.write();
            let (old_version, freed_points, old_disk) = match &*slot {
                Slot::Resident {
                    version,
                    sketch,
                    disk,
                } => {
                    // version 0 is the placeholder of a just-created entry.
                    let freed = if *version == 0 {
                        0
                    } else {
                        sketch.len() as u64
                    };
                    (*version, freed, disk.clone())
                }
                Slot::Spilled { version, path } => (*version, 0, Some(path.clone())),
            };
            let version = match forced_version {
                None => old_version + 1,
                Some(v) if v > old_version => v,
                Some(v) => {
                    return Err(ServeError::StaleVersion {
                        tenant: tenant.clone(),
                        dataset: dataset.clone(),
                        current: old_version,
                        offered: v,
                    })
                }
            };
            let disk = if let Some(dir) = &self.config.data_dir {
                // Write-ahead: sketch bytes first, announcement second,
                // both synced before the swap below makes them servable.
                let file_name = durable_file_name(tenant, dataset, version);
                let path = dir.join(&file_name);
                sketch_codec::save_synced(&path, &sketch.to_wire())?;
                let record = ManifestRecord::Publish {
                    tenant: tenant.as_str().to_owned(),
                    dataset: dataset.as_str().to_owned(),
                    version,
                    ttl_nanos: entry.ttl_nanos.load(Ordering::Relaxed),
                    sketch_file: file_name,
                };
                // On append failure the sketch file is deliberately left in
                // place for recovery to adjudicate: an append error does not
                // prove the record missed the disk (the write may have landed
                // and only the ack was lost, like a DB commit whose response
                // never arrived).  Replay serves the file if the record
                // committed and reaps it as an orphan if it did not; deleting
                // it here would lose a committed version.
                self.manifest_append(&record)?;
                Some(path)
            } else {
                None
            };
            *slot = Slot::Resident {
                version,
                sketch,
                disk,
            };
            if let Some(stale) = old_disk {
                // The old bytes describe a superseded version (a spill file,
                // or the previous version's durable copy — the manifest now
                // announces the new one).  Delete them *while still holding
                // the slot lock*: the eviction sweep writes spill files
                // under this same lock, so a deferred delete could race a
                // re-eviction of this entry and destroy the fresh file its
                // new `Spilled` state points at.
                let _ = std::fs::remove_file(stale);
            }
            // Net counter change, add before sub so the transient value is
            // high rather than wrapped-negative.
            self.resident_points
                .fetch_add(new_points, Ordering::Relaxed);
            if freed_points > 0 {
                self.resident_points
                    .fetch_sub(freed_points, Ordering::Relaxed);
            }
            version
        };
        // Publication resets the TTL clock and completes any in-flight
        // background refresh: the very next snapshot is fresh again.
        entry
            .published_at_nanos
            .store(self.now_nanos(), Ordering::Relaxed);
        entry.refreshing.store(false, Ordering::Release);
        self.touch(&entry);
        self.stats.publishes.fetch_add(1, Ordering::Relaxed);
        self.enforce_budget(tenant, dataset);
        Ok(version)
    }

    /// Publish a sketch previously persisted with the shared sketch codec
    /// (warm start from the CLI's `--out` files, for example).
    pub fn load_persisted(
        &self,
        tenant: &TenantId,
        dataset: &DatasetId,
        path: impl AsRef<Path>,
    ) -> ServeResult<u64> {
        let sketch = QuantileSketch::from_wire(sketch_codec::load(path)?)?;
        self.publish(tenant, dataset, sketch)
    }

    /// Hand out the current complete version of `(tenant, dataset)`,
    /// transparently reloading it from disk if it was evicted.
    ///
    /// # Errors
    /// [`ServeError::UnknownEntry`] if nothing was ever published for the
    /// key; storage/core errors if a spilled sketch fails to reload.
    pub fn snapshot(&self, tenant: &TenantId, dataset: &DatasetId) -> ServeResult<SketchSnapshot> {
        let entry = self
            .entry(tenant, dataset)
            .ok_or_else(|| ServeError::UnknownEntry {
                tenant: tenant.clone(),
                dataset: dataset.clone(),
            })?;
        self.touch(&entry);
        let (freshness, refresh_triggered) = self.classify_freshness(&entry, tenant, dataset);

        {
            let slot = entry.slot.read();
            if let Slot::Resident {
                version, sketch, ..
            } = &*slot
            {
                if *version == 0 {
                    // Entry created by a concurrent publish that has not
                    // swapped its real sketch in yet: not observable data.
                    return Err(ServeError::UnknownEntry {
                        tenant: tenant.clone(),
                        dataset: dataset.clone(),
                    });
                }
                self.stats.snapshots.fetch_add(1, Ordering::Relaxed);
                return Ok(SketchSnapshot {
                    version: *version,
                    sketch: Arc::clone(sketch),
                    freshness,
                    origin: SnapshotOrigin::Hit,
                    refresh_triggered,
                });
            }
        }

        // Spilled: take the write lock, re-check (another reader may have
        // won the reload race), then reload and re-validate.
        let snapshot = {
            let mut slot = entry.slot.write();
            match &*slot {
                Slot::Resident {
                    version, sketch, ..
                } => SketchSnapshot {
                    version: *version,
                    sketch: Arc::clone(sketch),
                    freshness,
                    origin: SnapshotOrigin::Hit,
                    refresh_triggered,
                },
                Slot::Spilled { version, path } => {
                    let sketch = Arc::new(QuantileSketch::from_wire(sketch_codec::load(path)?)?);
                    let durable = self.config.data_dir.is_some();
                    if !durable {
                        // The slot is Resident again: drop the on-disk copy
                        // now (under the lock), otherwise a later publish
                        // over the Resident slot would leave it orphaned
                        // forever.  A re-eviction rewrites the file from
                        // scratch anyway.  In durable mode the file *is* the
                        // entry's persistence — it stays, and re-eviction
                        // just drops residency again without a rewrite.
                        let _ = std::fs::remove_file(path);
                    }
                    let reloaded = SketchSnapshot {
                        version: *version,
                        sketch: Arc::clone(&sketch),
                        freshness,
                        origin: SnapshotOrigin::ReloadFromSpill,
                        refresh_triggered,
                    };
                    self.resident_points
                        .fetch_add(sketch.len() as u64, Ordering::Relaxed);
                    self.stats.reloads.fetch_add(1, Ordering::Relaxed);
                    *slot = Slot::Resident {
                        version: *version,
                        disk: durable.then(|| path.clone()),
                        sketch,
                    };
                    reloaded
                }
            }
        };
        self.stats.snapshots.fetch_add(1, Ordering::Relaxed);
        self.enforce_budget(tenant, dataset);
        Ok(snapshot)
    }

    /// Evict least-recently-touched resident entries (never `keep`) until
    /// the resident total fits the budget.  Best-effort in every sense: a
    /// concurrent toucher may revive an entry between selection and
    /// eviction (costing an extra reload later, never correctness), and a
    /// spill-write failure (disk full, directory removed) only stops the
    /// sweep and bumps [`CatalogStats::spill_failures`] — the victim stays
    /// resident and servable, and the publish or read that triggered the
    /// sweep still succeeds, because its own work already landed.
    fn enforce_budget(&self, keep_tenant: &TenantId, keep_dataset: &DatasetId) {
        let Some(budget) = self.config.budget_sample_points else {
            return;
        };
        let dir = self
            .config
            .spill_dir
            .as_ref()
            .or(self.config.data_dir.as_ref())
            .expect("validated at construction")
            .clone();
        while self.resident_points.load(Ordering::Relaxed) > budget {
            // Pick the coldest resident entry other than the kept one.
            let victim = {
                let entries = self.entries.read();
                let mut coldest: Option<(CatalogKey, Arc<Entry>, u64)> = None;
                for (tenant, datasets) in entries.iter() {
                    for (dataset, entry) in datasets.iter() {
                        if tenant == keep_tenant && dataset == keep_dataset {
                            continue;
                        }
                        // try_read: skip entries mid-publish/mid-reload
                        // rather than block the eviction sweep on them.
                        let Some(slot) = entry.slot.try_read() else {
                            continue;
                        };
                        if !matches!(&*slot, Slot::Resident { version, .. } if *version > 0) {
                            continue;
                        }
                        drop(slot);
                        let touch = entry.last_touch.load(Ordering::Relaxed);
                        if coldest.as_ref().is_none_or(|(_, _, t)| touch < *t) {
                            coldest =
                                Some(((tenant.clone(), dataset.clone()), Arc::clone(entry), touch));
                        }
                    }
                }
                coldest
            };
            let Some((key, entry, _)) = victim else {
                // Nothing evictable (only `keep` is resident): budgets are
                // best-effort, the hot entry always stays servable.
                return;
            };
            let mut slot = entry.slot.write();
            if let Slot::Resident {
                version,
                sketch,
                disk,
            } = &*slot
            {
                let (version, sketch) = (*version, Arc::clone(sketch));
                let path = if let Some(existing) = disk {
                    // Durable entry: its exact bytes are already synced on
                    // disk (write-ahead publish / kept reload), so eviction
                    // is just "log it, drop residency" — no rewrite.  This
                    // is what turns the spill path into a persistence tier.
                    let path = existing.clone();
                    if self
                        .manifest_append(&ManifestRecord::Evict {
                            tenant: key.0.as_str().to_owned(),
                            dataset: key.1.as_str().to_owned(),
                            version,
                        })
                        .is_err()
                    {
                        self.stats.spill_failures.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    path
                } else {
                    let path = dir.join(spill_file_name(&key));
                    if sketch_codec::save(&path, &sketch.to_wire()).is_err() {
                        // A failed write can leave a truncated file behind
                        // (e.g. ENOSPC after create); nothing will ever
                        // point at it, so reap it now rather than accumulate
                        // corrupt orphans.
                        let _ = std::fs::remove_file(&path);
                        self.stats.spill_failures.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    path
                };
                *slot = Slot::Spilled { version, path };
                self.resident_points
                    .fetch_sub(sketch.len() as u64, Ordering::Relaxed);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
            // Raced to Spilled by another sweep: loop re-checks the total.
        }
    }

    /// Whether `(tenant, dataset)` has a published sketch (resident or
    /// spilled).
    pub fn contains(&self, tenant: &TenantId, dataset: &DatasetId) -> bool {
        self.entry(tenant, dataset).is_some()
    }

    /// Number of entries (resident or spilled).
    pub fn len(&self) -> usize {
        self.entries.read().values().map(HashMap::len).sum()
    }

    /// Whether the catalog holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All `(tenant, dataset)` keys, sorted for deterministic reporting.
    pub fn keys(&self) -> Vec<(TenantId, DatasetId)> {
        let mut keys: Vec<_> = self
            .entries
            .read()
            .iter()
            .flat_map(|(tenant, datasets)| {
                datasets
                    .keys()
                    .map(|dataset| (tenant.clone(), dataset.clone()))
            })
            .collect();
        keys.sort();
        keys
    }

    /// The catalog's version vector: every published `(tenant, dataset)`
    /// with its current version, sorted for deterministic wire encoding.
    /// This is what the `/v1/_sync/manifest` endpoint serves and what a
    /// bootstrapping replica diffs against its own catalog — an entry is
    /// fetched iff the peer's version is strictly newer.  Entries still on
    /// their never-observable version-0 placeholder are omitted.
    pub fn inventory(&self) -> Vec<InventoryEntry> {
        let snapshot: Vec<(TenantId, DatasetId, Arc<Entry>)> = self
            .entries
            .read()
            .iter()
            .flat_map(|(tenant, datasets)| {
                datasets
                    .iter()
                    .map(|(dataset, entry)| (tenant.clone(), dataset.clone(), Arc::clone(entry)))
            })
            .collect();
        let mut rows: Vec<InventoryEntry> = snapshot
            .into_iter()
            .filter_map(|(tenant, dataset, entry)| {
                let version = match &*entry.slot.read() {
                    Slot::Resident { version, .. } | Slot::Spilled { version, .. } => *version,
                };
                (version > 0).then(|| InventoryEntry {
                    tenant: tenant.as_str().to_owned(),
                    dataset: dataset.as_str().to_owned(),
                    version,
                })
            })
            .collect();
        rows.sort();
        rows
    }

    /// Sample points currently resident in memory.
    pub fn resident_sample_points(&self) -> u64 {
        self.resident_points.load(Ordering::Relaxed)
    }

    /// Counter snapshot for reporting.
    pub fn stats(&self) -> CatalogStats {
        CatalogStats {
            publishes: self.stats.publishes.load(Ordering::Relaxed),
            snapshots: self.stats.snapshots.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            reloads: self.stats.reloads.load(Ordering::Relaxed),
            spill_failures: self.stats.spill_failures.load(Ordering::Relaxed),
            stale_snapshots: self.stats.stale_snapshots.load(Ordering::Relaxed),
            ttl_refreshes: self.stats.ttl_refreshes.load(Ordering::Relaxed),
            entries: self.len() as u64,
            resident_sample_points: self.resident_sample_points(),
            recoveries: self.recoveries,
            manifest_records: self.stats.manifest_records.load(Ordering::Relaxed),
            orphan_spills_removed: self.recovery.map_or(0, |r| r.orphan_spills_removed),
        }
    }
}

/// A structurally valid 1-element sketch used as the never-observable
/// placeholder of a just-created entry (version 0).
fn placeholder_sketch() -> QuantileSketch<u64> {
    QuantileSketch::assemble(
        vec![opaq_core::SamplePoint { value: 0, gap: 1 }],
        1,
        1,
        1,
        0,
        0,
    )
    .expect("placeholder sketch is valid")
}

/// Deterministic, filesystem-safe name for the durable copy of one
/// published version.  Unlike [`spill_file_name`] it embeds the version:
/// the write-ahead publish writes version `v+1` *next to* version `v`'s
/// file (which stays authoritative until the manifest announces the new
/// one), so the two must never share a name.
fn durable_file_name(tenant: &TenantId, dataset: &DatasetId, version: u64) -> String {
    let base = spill_file_name(&(tenant.clone(), dataset.clone()));
    let stem = base.strip_suffix(".sketch").unwrap_or(&base);
    format!("{stem}--v{version}.sketch")
}

/// Deterministic, filesystem-safe spill file name for a catalog key.
fn spill_file_name(key: &CatalogKey) -> String {
    let sanitize = |s: &str| {
        s.chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    c
                } else {
                    '_'
                }
            })
            .take(32)
            .collect::<String>()
    };
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    format!(
        "{}--{}--{:016x}.sketch",
        sanitize(key.0.as_str()),
        sanitize(key.1.as_str()),
        hasher.finish()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use opaq_core::{IncrementalOpaq, OpaqConfig};

    fn sketch_of(range: std::ops::Range<u64>) -> QuantileSketch<u64> {
        let config = OpaqConfig::builder()
            .run_length(100)
            .sample_size(10)
            .build()
            .unwrap();
        let mut inc = IncrementalOpaq::new(config).unwrap();
        inc.add_run(range.collect()).unwrap();
        inc.into_sketch().unwrap()
    }

    fn key(t: &str, d: &str) -> (TenantId, DatasetId) {
        (TenantId::from(t), DatasetId::from(d))
    }

    #[test]
    fn publish_bumps_versions_and_snapshots_see_them() {
        let catalog = SketchCatalog::unbounded();
        let (t, d) = key("acme", "clicks");
        assert!(!catalog.contains(&t, &d));
        assert_eq!(catalog.publish(&t, &d, sketch_of(0..1000)).unwrap(), 1);
        let v1 = catalog.snapshot(&t, &d).unwrap();
        assert_eq!(v1.version, 1);
        assert_eq!(v1.sketch.total_elements(), 1000);

        assert_eq!(catalog.publish(&t, &d, sketch_of(0..2000)).unwrap(), 2);
        let v2 = catalog.snapshot(&t, &d).unwrap();
        assert_eq!(v2.version, 2);
        assert_eq!(v2.sketch.total_elements(), 2000);
        // The old snapshot stays alive and untouched.
        assert_eq!(v1.sketch.total_elements(), 1000);
        assert_eq!(catalog.stats().publishes, 2);
    }

    #[test]
    fn unknown_entries_are_typed_errors() {
        let catalog = SketchCatalog::unbounded();
        let (t, d) = key("ghost", "none");
        let err = catalog.snapshot(&t, &d).unwrap_err();
        assert!(matches!(err, ServeError::UnknownEntry { .. }), "{err}");
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn tenants_and_datasets_are_isolated() {
        let catalog = SketchCatalog::unbounded();
        let (a, d1) = key("a", "x");
        let (b, d2) = key("b", "x");
        catalog.publish(&a, &d1, sketch_of(0..500)).unwrap();
        catalog.publish(&b, &d2, sketch_of(0..900)).unwrap();
        catalog
            .publish(&a, &DatasetId::from("y"), sketch_of(0..100))
            .unwrap();
        assert_eq!(catalog.len(), 3);
        assert_eq!(
            catalog.snapshot(&a, &d1).unwrap().sketch.total_elements(),
            500
        );
        assert_eq!(
            catalog.snapshot(&b, &d2).unwrap().sketch.total_elements(),
            900
        );
        let keys = catalog.keys();
        assert_eq!(keys.len(), 3);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn eviction_spills_cold_entries_and_reload_restores_them() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("opaq-serve-evict-{}", std::process::id()));
        let catalog = SketchCatalog::new(CatalogConfig {
            // Each sketch_of(0..1000) has 100 sample points; allow two.
            budget_sample_points: Some(200),
            spill_dir: Some(dir.clone()),
            default_max_age: None,
            data_dir: None,
        })
        .unwrap();

        let tenants: Vec<_> = (0..4).map(|i| key(&format!("t{i}"), "data")).collect();
        for (t, d) in &tenants {
            catalog.publish(t, d, sketch_of(0..1000)).unwrap();
        }
        assert!(
            catalog.resident_sample_points() <= 200,
            "resident {} over budget",
            catalog.resident_sample_points()
        );
        let stats = catalog.stats();
        assert!(stats.evictions >= 2, "{stats:?}");

        // Every entry still serves identical estimates, reloading as needed.
        let reference = sketch_of(0..1000);
        for (t, d) in &tenants {
            let snap = catalog.snapshot(t, d).unwrap();
            assert_eq!(snap.version, 1);
            assert_eq!(*snap.sketch, reference);
        }
        assert!(catalog.stats().reloads >= 2);
        // And the budget still holds after the reload churn.
        assert!(catalog.resident_sample_points() <= 200);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn reload_then_republish_leaves_no_orphaned_spill_files() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("opaq-serve-orphan-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let catalog = SketchCatalog::new(CatalogConfig {
            budget_sample_points: Some(100), // exactly one 100-point sketch
            spill_dir: Some(dir.clone()),
            default_max_age: None,
            data_dir: None,
        })
        .unwrap();
        let (a, da) = key("a", "data");
        let (b, db) = key("b", "data");
        catalog.publish(&a, &da, sketch_of(0..1000)).unwrap();
        catalog.publish(&b, &db, sketch_of(0..1000)).unwrap(); // evicts a
        catalog.snapshot(&a, &da).unwrap(); // reloads a, evicts b
        catalog.publish(&a, &da, sketch_of(0..2000)).unwrap(); // v2 over resident
                                                               // Only b is spilled, so exactly its one file may exist on disk —
                                                               // the reload must have deleted a's file, or the republish above
                                                               // would have orphaned it forever.
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(files, 1, "spill dir must hold only live spill files");
        assert_eq!(catalog.snapshot(&b, &db).unwrap().version, 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn spill_failure_degrades_gracefully_instead_of_failing_the_publish() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("opaq-serve-spillfail-{}", std::process::id()));
        let catalog = SketchCatalog::new(CatalogConfig {
            budget_sample_points: Some(100),
            spill_dir: Some(dir.clone()),
            default_max_age: None,
            data_dir: None,
        })
        .unwrap();
        let (a, da) = key("a", "data");
        let (b, db) = key("b", "data");
        catalog.publish(&a, &da, sketch_of(0..1000)).unwrap();
        // Break the spill directory out from under the catalog: the next
        // over-budget publish cannot evict, but must still land.
        std::fs::remove_dir_all(&dir).unwrap();
        let version = catalog.publish(&b, &db, sketch_of(0..1000)).unwrap();
        assert_eq!(version, 1, "publish must succeed despite the failed spill");
        let stats = catalog.stats();
        assert!(stats.spill_failures > 0, "{stats:?}");
        assert_eq!(stats.evictions, 0);
        // Both entries stay resident and servable (budget is best-effort).
        assert_eq!(catalog.snapshot(&a, &da).unwrap().version, 1);
        assert_eq!(catalog.snapshot(&b, &db).unwrap().version, 1);
        assert_eq!(catalog.resident_sample_points(), 200);
    }

    #[test]
    fn budget_without_spill_dir_is_rejected() {
        let err = SketchCatalog::new(CatalogConfig {
            budget_sample_points: Some(100),
            spill_dir: None,
            default_max_age: None,
            data_dir: None,
        })
        .unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn builder_validates_and_round_trips() {
        let config = CatalogConfig::builder()
            .budget_sample_points(200)
            .spill_dir("/tmp/opaq-spill")
            .default_max_age(Duration::from_secs(60))
            .build()
            .unwrap();
        assert_eq!(config.budget_sample_points, Some(200));
        assert_eq!(
            config.spill_dir.as_deref(),
            Some(Path::new("/tmp/opaq-spill"))
        );
        assert_eq!(config.default_max_age, Some(Duration::from_secs(60)));

        // A zero budget is rejected up front, not at first eviction.
        let err = CatalogConfig::builder()
            .budget_sample_points(0)
            .spill_dir("/tmp/opaq-spill")
            .build()
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)), "{err}");
        // As is a budget without anywhere to spill.
        let err = CatalogConfig::builder()
            .budget_sample_points(100)
            .build()
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)), "{err}");
        // The empty builder is the unbounded default.
        let unbounded = CatalogConfig::builder().build().unwrap();
        assert!(unbounded.budget_sample_points.is_none());
        assert!(unbounded.spill_dir.is_none());
    }

    #[test]
    fn publish_over_spilled_entry_supersedes_it() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("opaq-serve-supersede-{}", std::process::id()));
        let catalog = SketchCatalog::new(CatalogConfig {
            budget_sample_points: Some(100),
            spill_dir: Some(dir.clone()),
            default_max_age: None,
            data_dir: None,
        })
        .unwrap();
        let (a, d) = key("a", "data");
        let (b, d2) = key("b", "data");
        catalog.publish(&a, &d, sketch_of(0..1000)).unwrap();
        // Publishing b evicts a (only non-keep entry).
        catalog.publish(&b, &d2, sketch_of(0..1000)).unwrap();
        assert_eq!(catalog.stats().evictions, 1);
        // Publishing a again supersedes the spilled version: version 2, no
        // reload of the stale file.
        assert_eq!(catalog.publish(&a, &d, sketch_of(0..3000)).unwrap(), 2);
        let snap = catalog.snapshot(&a, &d).unwrap();
        assert_eq!(snap.version, 2);
        assert_eq!(snap.sketch.total_elements(), 3000);
        assert_eq!(catalog.stats().reloads, 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn load_persisted_round_trips_through_the_cli_format() {
        let mut path = std::env::temp_dir();
        path.push(format!("opaq-serve-warm-{}.sketch", std::process::id()));
        let sketch = sketch_of(0..5000);
        sketch_codec::save(&path, &sketch.to_wire()).unwrap();

        let catalog = SketchCatalog::unbounded();
        let (t, d) = key("warm", "start");
        assert_eq!(catalog.load_persisted(&t, &d, &path).unwrap(), 1);
        let snap = catalog.snapshot(&t, &d).unwrap();
        assert_eq!(*snap.sketch, sketch);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn ttl_expiry_tags_stale_then_refreshing_then_fresh_again() {
        let catalog = Arc::new(SketchCatalog::unbounded());
        let (t, d) = key("acme", "clicks");
        catalog.publish(&t, &d, sketch_of(0..1000)).unwrap();
        // No TTL: always fresh.
        assert_eq!(
            catalog.snapshot(&t, &d).unwrap().freshness,
            Freshness::Fresh
        );

        catalog
            .set_ttl(&t, &d, Some(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(
            catalog.snapshot(&t, &d).unwrap().freshness,
            Freshness::Fresh
        );
        std::thread::sleep(Duration::from_millis(10));
        // Expired with no refresh hook installed: stale, and it keeps
        // serving the old complete version (stale-while-refresh).
        let snap = catalog.snapshot(&t, &d).unwrap();
        assert_eq!(snap.freshness, Freshness::Stale);
        assert_eq!(snap.version, 1);
        assert_eq!(snap.sketch.total_elements(), 1000);
        assert!(catalog.stats().stale_snapshots >= 1);
        assert_eq!(catalog.stats().ttl_refreshes, 0);

        // With a hook, the first expired snapshot routes the entry to the
        // refresh pipeline exactly once and tags `refreshing` from then on.
        let fired = Arc::new(AtomicU64::new(0));
        let fired_in_hook = Arc::clone(&fired);
        catalog.set_refresh_hook(Box::new(move |tenant, dataset| {
            assert_eq!(tenant.as_str(), "acme");
            assert_eq!(dataset.as_str(), "clicks");
            fired_in_hook.fetch_add(1, Ordering::Relaxed);
            true
        }));
        for _ in 0..5 {
            assert_eq!(
                catalog.snapshot(&t, &d).unwrap().freshness,
                Freshness::Refreshing
            );
        }
        assert_eq!(fired.load(Ordering::Relaxed), 1, "hook fires once");
        assert_eq!(catalog.stats().ttl_refreshes, 1);

        // The publish the refresh produces resets clock and tag together.
        assert_eq!(catalog.publish(&t, &d, sketch_of(0..2000)).unwrap(), 2);
        let snap = catalog.snapshot(&t, &d).unwrap();
        assert_eq!(snap.freshness, Freshness::Fresh);
        assert_eq!(snap.version, 2);

        // And once it expires again the cycle restarts (a second hook fire).
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(
            catalog.snapshot(&t, &d).unwrap().freshness,
            Freshness::Refreshing
        );
        assert_eq!(fired.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn aborted_refresh_reopens_the_trigger() {
        let catalog = SketchCatalog::unbounded();
        let (t, d) = key("a", "d");
        catalog.publish(&t, &d, sketch_of(0..100)).unwrap();
        catalog.set_ttl(&t, &d, Some(Duration::ZERO)).unwrap();
        let fired = Arc::new(AtomicU64::new(0));
        let fired_in_hook = Arc::clone(&fired);
        catalog.set_refresh_hook(Box::new(move |_, _| {
            fired_in_hook.fetch_add(1, Ordering::Relaxed);
            true
        }));
        assert_eq!(
            catalog.snapshot(&t, &d).unwrap().freshness,
            Freshness::Refreshing
        );
        assert_eq!(fired.load(Ordering::Relaxed), 1);
        // A failed build reports back; the next snapshot may re-trigger.
        catalog.refresh_aborted(&t, &d);
        assert_eq!(
            catalog.snapshot(&t, &d).unwrap().freshness,
            Freshness::Refreshing
        );
        assert_eq!(fired.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn hook_that_cannot_submit_degrades_to_stale_and_retries() {
        // A hook whose refresh pool is gone (or whose submit was rejected)
        // returns false: the entry must report Stale — not Refreshing
        // forever — and the next expired snapshot must re-try the hook.
        let catalog = SketchCatalog::unbounded();
        let (t, d) = key("a", "d");
        catalog.publish(&t, &d, sketch_of(0..100)).unwrap();
        catalog.set_ttl(&t, &d, Some(Duration::ZERO)).unwrap();
        let fired = Arc::new(AtomicU64::new(0));
        let fired_in_hook = Arc::clone(&fired);
        catalog.set_refresh_hook(Box::new(move |_, _| {
            fired_in_hook.fetch_add(1, Ordering::Relaxed);
            false // e.g. Weak<RefreshPool> failed to upgrade
        }));
        for round in 1..=3u64 {
            assert_eq!(
                catalog.snapshot(&t, &d).unwrap().freshness,
                Freshness::Stale
            );
            assert_eq!(fired.load(Ordering::Relaxed), round, "hook re-tries");
        }
        // Failed routings are not counted as refreshes.
        assert_eq!(catalog.stats().ttl_refreshes, 0);
    }

    #[test]
    fn default_max_age_applies_to_new_entries() {
        let catalog = SketchCatalog::new(CatalogConfig {
            default_max_age: Some(Duration::ZERO),
            ..CatalogConfig::default()
        })
        .unwrap();
        let (t, d) = key("a", "d");
        catalog.publish(&t, &d, sketch_of(0..100)).unwrap();
        assert_eq!(
            catalog.snapshot(&t, &d).unwrap().freshness,
            Freshness::Stale
        );
        // Per-entry override clears it.
        catalog.set_ttl(&t, &d, None).unwrap();
        assert_eq!(
            catalog.snapshot(&t, &d).unwrap().freshness,
            Freshness::Fresh
        );
        // Setting a TTL on an unknown entry is a typed error.
        assert!(matches!(
            catalog.set_ttl(&TenantId::from("nope"), &d, None),
            Err(ServeError::UnknownEntry { .. })
        ));
    }

    #[test]
    fn freshness_wire_form_round_trips() {
        for f in [Freshness::Fresh, Freshness::Stale, Freshness::Refreshing] {
            assert_eq!(Freshness::parse(f.as_str()), Some(f));
            assert_eq!(format!("{f}"), f.as_str());
        }
        assert_eq!(Freshness::parse("bogus"), None);
    }

    #[test]
    fn spill_file_names_are_safe_and_distinct() {
        let a = spill_file_name(&key("a/b", "x"));
        let b = spill_file_name(&key("a_b", "x"));
        assert_ne!(a, b, "hash suffix disambiguates sanitized collisions");
        assert!(!a.contains('/'));
        let long = spill_file_name(&key(&"t".repeat(200), "d"));
        assert!(long.len() < 120);
    }
}
