//! Load-generator harness: replay a mixed read/refresh workload over the
//! serving stack and verify every response against the version it claims.
//!
//! The harness stands up a catalog + query engine over `M` synthetic
//! tenants, then runs `N` client threads issuing a round-robin mix of all
//! four request types while one background refresher keeps publishing new
//! sketch versions (the paper's §4 incremental formulation: fold new runs
//! into the old sample list, publish the merged sketch).
//!
//! **Torn-read detection.**  Before a version is published to the catalog,
//! the refresher registers an independent clone of that version's sketch in
//! a side registry keyed `(tenant, version)`.  Every client response carries
//! the version that answered it, so the client re-executes the same request
//! directly against the registered sketch and compares byte-for-byte.  Any
//! response that is not *exactly* the output of one complete published
//! version — a half-swapped sketch, a version the catalog invented, a stale
//! mix — counts as a torn read.  A correct catalog yields zero across any
//! interleaving of readers, refreshes, evictions and reloads.

use crate::catalog::{CatalogConfig, CatalogStats, DatasetId, SketchCatalog, TenantId};
use crate::query::{execute_on, QueryEngine, QueryRequest};
use crate::{ServeError, ServeResult};
use opaq_core::{IncrementalOpaq, OpaqConfig, QuantileSketch};
use opaq_datagen::{DatasetSpec, Distribution};
use opaq_metrics::{render_latency_table, LatencyHistogram, LatencySnapshot, TextTable};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shape of one serving workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of tenants (each with one dataset).
    pub tenants: usize,
    /// Number of concurrent client threads.
    pub clients: usize,
    /// Requests issued by each client.
    pub ops_per_client: u64,
    /// Keys in each tenant's initial dataset.
    pub keys_per_tenant: u64,
    /// OPAQ run length `m`.
    pub run_length: u64,
    /// OPAQ per-run sample size `s`.
    pub sample_size: u64,
    /// Background refresh publications per tenant during the workload.
    pub refresh_rounds: u64,
    /// Optional resident budget (sample points) to exercise spill/reload.
    pub budget_sample_points: Option<u64>,
    /// Spill directory; a temp dir is created (and removed) when a budget
    /// is set without one.
    pub spill_dir: Option<PathBuf>,
    /// Workload seed (data, request mix and tenant choice all derive from it).
    pub seed: u64,
    /// Open-loop mode: aggregate request rate the clients hold, regardless
    /// of how fast the server answers.  Each op has a fixed scheduled send
    /// time and its latency is measured **from that schedule**, so a
    /// lagging server accrues queueing delay instead of silently slowing
    /// the load down (the closed-loop coordinated-omission trap).  `None`
    /// keeps the classic closed-loop behaviour (send as fast as responses
    /// return).
    pub target_qps: Option<f64>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self {
            tenants: 4,
            clients: 8,
            ops_per_client: 2_000,
            keys_per_tenant: 100_000,
            run_length: 10_000,
            sample_size: 500,
            refresh_rounds: 5,
            budget_sample_points: None,
            spill_dir: None,
            seed: 42,
            target_qps: None,
        }
    }
}

impl WorkloadSpec {
    /// A small configuration for CI smoke runs (seconds, not minutes).
    pub fn quick() -> Self {
        Self {
            tenants: 2,
            clients: 4,
            ops_per_client: 300,
            keys_per_tenant: 20_000,
            run_length: 2_000,
            sample_size: 200,
            refresh_rounds: 3,
            budget_sample_points: None,
            spill_dir: None,
            seed: 42,
            target_qps: None,
        }
    }
}

/// What a workload run observed.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Total requests completed.
    pub ops: u64,
    /// Wall-clock time of the client phase.
    pub wall: Duration,
    /// Fleet-wide latency distribution (server-side execution time).
    pub overall: LatencySnapshot,
    /// Client-observed latency.  Closed-loop: measured from the actual
    /// send.  Open-loop: measured from each op's *scheduled* send time, so
    /// queueing delay under overload is included (coordinated-omission
    /// safe) — this is the distribution SLO thresholds are judged against.
    pub client_latency: LatencySnapshot,
    /// The open-loop rate the clients held, if one was configured.
    pub target_qps: Option<f64>,
    /// Per-tenant latency distributions, sorted by tenant.
    pub per_tenant: Vec<(TenantId, LatencySnapshot)>,
    /// Sketch versions published while clients were running.
    pub refreshes_published: u64,
    /// Responses that matched no complete published version (must be 0).
    pub torn_reads: u64,
    /// Responses verified byte-for-byte against their claimed version.
    pub verified: u64,
    /// Catalog counters at the end of the run.
    pub catalog: CatalogStats,
}

impl LoadReport {
    /// Requests per second over the client phase.
    pub fn throughput(&self) -> f64 {
        self.overall.count as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Render the report as text tables (per-tenant latency + summary).
    pub fn render(&self) -> String {
        let mut rows = self.per_tenant.clone();
        let mut labelled: Vec<(String, LatencySnapshot)> = rows
            .drain(..)
            .map(|(tenant, snap)| (tenant.to_string(), snap))
            .collect();
        labelled.push(("all".to_string(), self.overall));
        labelled.push(("client-observed".to_string(), self.client_latency));
        let mut out = render_latency_table("serve latency by tenant", &labelled);
        let mut summary = TextTable::new("serve workload summary").header(["metric", "value"]);
        summary.row(["ops".to_string(), self.ops.to_string()]);
        summary.row(["wall".to_string(), format!("{:?}", self.wall)]);
        if let Some(qps) = self.target_qps {
            summary.row(["target qps (open loop)".to_string(), format!("{qps:.0}")]);
        }
        summary.row([
            "throughput".to_string(),
            format!("{:.0} ops/s", self.throughput()),
        ]);
        summary.row([
            "refreshes published".to_string(),
            self.refreshes_published.to_string(),
        ]);
        summary.row(["verified responses".to_string(), self.verified.to_string()]);
        summary.row(["torn reads".to_string(), self.torn_reads.to_string()]);
        summary.row(["evictions".to_string(), self.catalog.evictions.to_string()]);
        summary.row(["reloads".to_string(), self.catalog.reloads.to_string()]);
        summary.row([
            "resident sample points".to_string(),
            self.catalog.resident_sample_points.to_string(),
        ]);
        out.push_str(&summary.render());
        out
    }
}

/// Deterministic per-thread PRNG (splitmix-style), independent of the shims.
/// Public so the HTTP workload harness in `opaq-net` replays the *same*
/// request stream and data chunks — comparable run for run by construction.
pub fn next_rand(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn tenant_ids(spec: &WorkloadSpec) -> Vec<(TenantId, DatasetId)> {
    (0..spec.tenants)
        .map(|i| {
            (
                TenantId::new(format!("tenant-{i}")),
                DatasetId::new("events"),
            )
        })
        .collect()
}

/// The dataset chunk tenant `tenant` ingests in refresh round `round`
/// (round 0 is the initial load).  Shared with the HTTP harness.
pub fn chunk_spec(spec: &WorkloadSpec, tenant: usize, round: u64, n: u64) -> DatasetSpec {
    DatasetSpec {
        n,
        distribution: Distribution::Uniform { domain: 1 << 31 },
        duplicate_fraction: 0.1,
        seed: spec
            .seed
            .wrapping_add(1 + tenant as u64)
            .wrapping_mul(1_000_003)
            .wrapping_add(round),
    }
}

/// The next request in the workload's round-robin mix.  Shared with the
/// HTTP harness.
pub fn request_for(rng: &mut u64) -> QueryRequest {
    let phi_of = |r: u64| (r % 10_000) as f64 / 10_000.0;
    match next_rand(rng) % 4 {
        0 => QueryRequest::Quantile {
            phi: phi_of(next_rand(rng)),
        },
        1 => QueryRequest::Rank {
            key: next_rand(rng) % (1 << 31),
        },
        2 => QueryRequest::QuantileBatch {
            phis: (0..3).map(|_| phi_of(next_rand(rng))).collect(),
        },
        _ => QueryRequest::Profile {
            count: 2 + next_rand(rng) % 14,
        },
    }
}

/// Run `spec` end to end and report latencies, throughput and the torn-read
/// count.  See the module docs for the verification discipline.
///
/// # Errors
/// Propagates any engine/catalog/refresh error; a clean run returns a report
/// (check [`LoadReport::torn_reads`] yourself — the harness reports, the
/// caller decides whether non-zero is fatal).
pub fn run_workload(spec: &WorkloadSpec) -> ServeResult<LoadReport> {
    if spec.tenants == 0 || spec.clients == 0 || spec.ops_per_client == 0 {
        return Err(ServeError::InvalidConfig(
            "a workload needs at least one tenant, one client and one op".into(),
        ));
    }
    if let Some(qps) = spec.target_qps {
        if !qps.is_finite() || qps <= 0.0 {
            return Err(ServeError::InvalidConfig(
                "an open-loop target QPS must be a positive finite number".into(),
            ));
        }
    }
    let config = OpaqConfig::builder()
        .run_length(spec.run_length)
        .sample_size(spec.sample_size.min(spec.run_length))
        .build()?;

    // Spill directory: honour the caller's, else create a temporary one
    // when eviction is requested, removed on *every* exit path (the guard
    // drops on errors too, so failed runs don't litter the temp dir).
    struct TempDirGuard(Option<std::path::PathBuf>);
    impl Drop for TempDirGuard {
        fn drop(&mut self) {
            if let Some(dir) = self.0.take() {
                std::fs::remove_dir_all(dir).ok();
            }
        }
    }
    let mut created_spill_dir = TempDirGuard(None);
    let spill_dir = match (&spec.budget_sample_points, &spec.spill_dir) {
        (None, dir) => dir.clone(),
        (Some(_), Some(dir)) => Some(dir.clone()),
        (Some(_), None) => {
            let mut dir = std::env::temp_dir();
            dir.push(format!(
                "opaq-serve-load-{}-{}",
                std::process::id(),
                spec.seed
            ));
            created_spill_dir.0 = Some(dir.clone());
            Some(dir)
        }
    };
    let catalog = Arc::new(SketchCatalog::new(CatalogConfig {
        budget_sample_points: spec.budget_sample_points,
        spill_dir,
        default_max_age: None,
        data_dir: None,
    })?);
    let engine = Arc::new(QueryEngine::new(Arc::clone(&catalog)));

    // (tenant index, version) -> the complete sketch of that version,
    // registered by the refresher *before* the catalog publish.
    type Registry = RwLock<HashMap<(usize, u64), Arc<QuantileSketch<u64>>>>;
    let registry: Arc<Registry> = Arc::new(RwLock::new(HashMap::new()));

    let ids = tenant_ids(spec);

    // Initial versions: one incremental estimator per tenant; the refresher
    // keeps folding new runs into them while the clients read.
    let mut incrementals = Vec::with_capacity(spec.tenants);
    for (tenant_idx, (tenant, dataset)) in ids.iter().enumerate() {
        let mut inc = IncrementalOpaq::new(config)?;
        inc.add_run(chunk_spec(spec, tenant_idx, 0, spec.keys_per_tenant).generate())?;
        let sketch = inc.sketch().expect("just added a run").clone();
        registry
            .write()
            .insert((tenant_idx, 1), Arc::new(sketch.clone()));
        let version = catalog.publish(tenant, dataset, sketch)?;
        debug_assert_eq!(version, 1);
        incrementals.push(inc);
    }

    let torn = AtomicU64::new(0);
    let verified = AtomicU64::new(0);
    let refreshes = AtomicU64::new(0);
    let client_latency = LatencyHistogram::new();
    // Open-loop: each client owns every `clients`-th slot of one aggregate
    // fixed-QPS schedule, staggered so the fleet sends evenly.
    let interval = spec
        .target_qps
        .map(|qps| Duration::from_secs_f64(spec.clients as f64 / qps));
    let start = Instant::now();

    let client_results: ServeResult<()> = crossbeam::thread::scope(|scope| {
        // Background refresher: live re-ingest of new runs, one publication
        // per tenant per round, spread across the client phase.
        let refresher = {
            let catalog = Arc::clone(&catalog);
            let registry = Arc::clone(&registry);
            let ids = &ids;
            let refreshes = &refreshes;
            let spec_ref = spec;
            scope.spawn(move |_| -> ServeResult<()> {
                for round in 1..=spec_ref.refresh_rounds {
                    for (tenant_idx, (tenant, dataset)) in ids.iter().enumerate() {
                        let chunk = chunk_spec(
                            spec_ref,
                            tenant_idx,
                            round,
                            (spec_ref.keys_per_tenant / 4).max(1),
                        )
                        .generate();
                        let inc = &mut incrementals[tenant_idx];
                        inc.add_run(chunk)?;
                        let sketch = inc.sketch().expect("non-empty").clone();
                        registry
                            .write()
                            .insert((tenant_idx, round + 1), Arc::new(sketch.clone()));
                        let version = catalog.publish(tenant, dataset, sketch)?;
                        if version != round + 1 {
                            return Err(ServeError::InvalidConfig(format!(
                                "refresher expected version {} but catalog assigned {version}",
                                round + 1
                            )));
                        }
                        refreshes.fetch_add(1, Ordering::Relaxed);
                        // Let reads interleave between publications.
                        std::thread::sleep(Duration::from_micros(300));
                    }
                }
                Ok(())
            })
        };

        let mut clients = Vec::with_capacity(spec.clients);
        for client_idx in 0..spec.clients {
            let engine = Arc::clone(&engine);
            let registry = Arc::clone(&registry);
            let ids = &ids;
            let torn = &torn;
            let verified = &verified;
            let client_latency = &client_latency;
            let spec_ref = spec;
            clients.push(scope.spawn(move |_| -> ServeResult<()> {
                let mut rng = spec_ref
                    .seed
                    .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(client_idx as u64 + 1));
                let stagger = interval
                    .map(|iv| iv.mul_f64(client_idx as f64 / spec_ref.clients as f64))
                    .unwrap_or_default();
                for op_idx in 0..spec_ref.ops_per_client {
                    // Open loop: wait for this op's scheduled slot, then
                    // measure from the *schedule* — if the server lags, the
                    // queueing delay lands in the recorded latency instead
                    // of silently throttling the offered load.
                    let sent = match interval {
                        Some(iv) => {
                            let scheduled = start + stagger + iv.mul_f64(op_idx as f64);
                            let now = Instant::now();
                            if scheduled > now {
                                std::thread::sleep(scheduled - now);
                            }
                            scheduled
                        }
                        None => Instant::now(),
                    };
                    let tenant_idx = (next_rand(&mut rng) % spec_ref.tenants as u64) as usize;
                    let (tenant, dataset) = &ids[tenant_idx];
                    let request = request_for(&mut rng);
                    let response = engine.execute(tenant, dataset, &request)?;
                    client_latency.record(sent.elapsed());
                    let expected = registry
                        .read()
                        .get(&(tenant_idx, response.version))
                        .cloned();
                    match expected {
                        None => {
                            // A version the refresher never registered:
                            // the catalog served something it was never
                            // given.
                            torn.fetch_add(1, Ordering::Relaxed);
                        }
                        Some(sketch) => {
                            let direct = execute_on(&sketch, &request)?;
                            if direct == response.output
                                && sketch.total_elements() == response.total_elements
                            {
                                verified.fetch_add(1, Ordering::Relaxed);
                            } else {
                                torn.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
                Ok(())
            }));
        }

        for client in clients {
            client.join().expect("client thread panicked")?;
        }
        refresher.join().expect("refresher thread panicked")?;
        Ok(())
    })
    .expect("workload scope does not panic");
    client_results?;

    let wall = start.elapsed();
    let report = LoadReport {
        ops: engine.overall().count(),
        wall,
        overall: engine.overall().snapshot(),
        client_latency: client_latency.snapshot(),
        target_qps: spec.target_qps,
        per_tenant: engine.latency_report(),
        refreshes_published: refreshes.load(Ordering::Relaxed),
        torn_reads: torn.load(Ordering::Relaxed),
        verified: verified.load(Ordering::Relaxed),
        catalog: catalog.stats(),
    };
    drop(created_spill_dir); // removes the auto-created spill dir
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_workload_serves_everything_untorn() {
        let report = run_workload(&WorkloadSpec::quick()).unwrap();
        assert_eq!(report.ops, 4 * 300);
        assert_eq!(report.torn_reads, 0, "torn reads observed");
        assert_eq!(report.verified, report.ops);
        assert_eq!(report.refreshes_published, 2 * 3);
        assert_eq!(report.per_tenant.len(), 2);
        assert!(report.overall.p50 <= report.overall.p99);
        let rendered = report.render();
        assert!(rendered.contains("torn reads"), "{rendered}");
        assert!(rendered.contains("p99"), "{rendered}");
    }

    #[test]
    fn workload_with_eviction_budget_still_verifies() {
        let mut spec = WorkloadSpec::quick();
        spec.ops_per_client = 1_500;
        // Each initial sketch has (keys/run_length)·s = 10·200 = 2000 sample
        // points and refreshes grow them, so a 4000-point budget forces
        // spill (and usually reload) churn between the two tenants; reload
        // counts depend on thread timing, so only evictions are asserted
        // here — the deterministic spill/reload semantics are pinned by the
        // catalog unit tests and the concurrency suite.
        spec.budget_sample_points = Some(4_000);
        spec.seed = 7;
        let report = run_workload(&spec).unwrap();
        assert_eq!(report.torn_reads, 0);
        assert_eq!(report.verified, report.ops);
        assert!(
            report.catalog.evictions > 0,
            "budget must actually evict: {:?}",
            report.catalog
        );
    }

    #[test]
    fn degenerate_specs_are_rejected() {
        let mut spec = WorkloadSpec::quick();
        spec.clients = 0;
        assert!(matches!(
            run_workload(&spec),
            Err(ServeError::InvalidConfig(_))
        ));
        let mut spec = WorkloadSpec::quick();
        spec.target_qps = Some(0.0);
        assert!(matches!(
            run_workload(&spec),
            Err(ServeError::InvalidConfig(_))
        ));
        spec.target_qps = Some(f64::NAN);
        assert!(matches!(
            run_workload(&spec),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn open_loop_mode_holds_the_schedule_and_still_verifies() {
        let mut spec = WorkloadSpec::quick();
        spec.ops_per_client = 50;
        spec.refresh_rounds = 1;
        spec.target_qps = Some(2_000.0);
        let report = run_workload(&spec).unwrap();
        assert_eq!(report.torn_reads, 0);
        assert_eq!(report.verified, report.ops);
        assert_eq!(report.client_latency.count, report.ops);
        assert_eq!(report.target_qps, Some(2_000.0));
        // 4 clients × 50 ops at 2000 QPS aggregate pins the last scheduled
        // send near 98 ms: an open-loop run can't finish faster than its
        // own schedule, however fast the in-process server answers.
        assert!(
            report.wall >= Duration::from_millis(90),
            "open loop finished in {:?} — schedule not honoured",
            report.wall
        );
        let rendered = report.render();
        assert!(rendered.contains("target qps"), "{rendered}");
        assert!(rendered.contains("client-observed"), "{rendered}");
    }
}
