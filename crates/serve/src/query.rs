//! The typed query engine: requests, responses and per-tenant latency
//! accounting.
//!
//! Every request resolves one catalog snapshot and answers entirely from it,
//! so a [`QueryRequest::QuantileBatch`] or [`QueryRequest::Profile`] is
//! guaranteed to be internally consistent — all of its estimates come from
//! the *same* published version, whose number the response carries.  That
//! version tag is what lets callers (and the load generator's torn-read
//! check) verify a response against the exact sketch that produced it.

use crate::catalog::{DatasetId, Freshness, SketchCatalog, SketchSnapshot, TenantId};
use crate::ServeResult;
use opaq_core::{QuantileEstimate, QuantileSketch, RankBounds};
use opaq_metrics::{LatencyHistogram, LatencySnapshot};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A typed query against one `(tenant, dataset)` entry.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryRequest {
    /// Bound the φ-quantile.
    Quantile {
        /// The quantile fraction, in `[0, 1]`.
        phi: f64,
    },
    /// Bound the rank of an arbitrary key (§4 of the paper).
    Rank {
        /// The key whose rank is requested.
        key: u64,
    },
    /// Bound several quantile fractions against one consistent version.
    QuantileBatch {
        /// The quantile fractions, each in `[0, 1]`.
        phis: Vec<f64>,
    },
    /// An equi-depth profile: all `count`-quantiles (`φ = 1/count …`).
    Profile {
        /// Number of equi-depth buckets (≥ 1).
        count: u64,
    },
}

/// The payload of a successful query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// Answer to [`QueryRequest::Quantile`].
    Quantile(QuantileEstimate<u64>),
    /// Answer to [`QueryRequest::Rank`].
    Rank(RankBounds),
    /// Answer to [`QueryRequest::QuantileBatch`] (same order as the request).
    QuantileBatch(Vec<QuantileEstimate<u64>>),
    /// Answer to [`QueryRequest::Profile`].
    Profile(Vec<QuantileEstimate<u64>>),
}

/// A successful query plus the provenance needed to audit it.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The computed estimates.
    pub output: QueryOutput,
    /// The catalog version (epoch) of the snapshot that answered.
    pub version: u64,
    /// Total elements summarised by that snapshot.
    pub total_elements: u64,
    /// TTL status of the answering snapshot (`fresh` unless the entry has a
    /// `max_age` and outlived it; see [`Freshness`]).
    pub freshness: Freshness,
}

/// Execute `request` against a sketch directly (no catalog, no metrics).
///
/// This is the single evaluation path: the engine calls it with a catalog
/// snapshot, and verification harnesses call it with an independently held
/// sketch to check a response byte-for-byte.
pub fn execute_on(
    sketch: &QuantileSketch<u64>,
    request: &QueryRequest,
) -> ServeResult<QueryOutput> {
    Ok(match request {
        QueryRequest::Quantile { phi } => QueryOutput::Quantile(sketch.estimate(*phi)?),
        QueryRequest::Rank { key } => QueryOutput::Rank(sketch.rank_bounds(*key)),
        QueryRequest::QuantileBatch { phis } => {
            QueryOutput::QuantileBatch(sketch.estimate_many(phis)?)
        }
        QueryRequest::Profile { count } => {
            QueryOutput::Profile(sketch.estimate_q_quantiles(*count)?)
        }
    })
}

/// Executes typed requests against catalog snapshots and records latency
/// per tenant (plus a fleet-wide histogram).  Share it behind an `Arc`
/// across client threads; every method takes `&self`.
#[derive(Debug)]
pub struct QueryEngine {
    catalog: Arc<SketchCatalog>,
    tenants: RwLock<HashMap<TenantId, Arc<LatencyHistogram>>>,
    overall: Arc<LatencyHistogram>,
    /// Per-request SLO threshold in nanos (0 = none armed); requests slower
    /// than this bump [`Self::slo_breaches`].
    slo_threshold_nanos: AtomicU64,
    slo_breaches: AtomicU64,
}

impl QueryEngine {
    /// Create an engine over `catalog`.
    pub fn new(catalog: Arc<SketchCatalog>) -> Self {
        Self {
            catalog,
            tenants: RwLock::new(HashMap::new()),
            overall: Arc::new(LatencyHistogram::new()),
            slo_threshold_nanos: AtomicU64::new(0),
            slo_breaches: AtomicU64::new(0),
        }
    }

    /// The catalog this engine serves from.
    pub fn catalog(&self) -> &Arc<SketchCatalog> {
        &self.catalog
    }

    /// Arm (or disarm, with `None`) a per-request latency SLO: every
    /// execution slower than `threshold` bumps [`Self::slo_breaches`],
    /// surfaced in `/metrics` as `opaq_slo_breaches` and in the serve
    /// shutdown summary.  This is the server-side view; the open-loop bench
    /// harness judges the client-observed distribution separately.
    pub fn set_slo_threshold(&self, threshold: Option<Duration>) {
        let nanos = threshold.map_or(0, |t| (t.as_nanos().min(u64::MAX as u128) as u64).max(1));
        self.slo_threshold_nanos.store(nanos, Ordering::Relaxed);
    }

    /// Requests that exceeded the armed SLO threshold (0 while disarmed).
    pub fn slo_breaches(&self) -> u64 {
        self.slo_breaches.load(Ordering::Relaxed)
    }

    /// Execute one request.  The measured latency covers snapshot resolution
    /// (including any spill reload) plus estimation — what a remote caller
    /// would observe, minus transport.
    pub fn execute(
        &self,
        tenant: &TenantId,
        dataset: &DatasetId,
        request: &QueryRequest,
    ) -> ServeResult<QueryResponse> {
        let start = Instant::now();
        let snapshot = self.catalog.snapshot(tenant, dataset)?;
        let response = Self::execute_snapshot(&snapshot, request)?;
        let elapsed = start.elapsed();
        self.overall.record(elapsed);
        self.tenant_histogram(tenant).record(elapsed);
        let threshold = self.slo_threshold_nanos.load(Ordering::Relaxed);
        if threshold > 0 && elapsed.as_nanos() > u128::from(threshold) {
            self.slo_breaches.fetch_add(1, Ordering::Relaxed);
        }
        Ok(response)
    }

    /// Execute against an already-resolved snapshot (no metrics recorded).
    pub fn execute_snapshot(
        snapshot: &SketchSnapshot,
        request: &QueryRequest,
    ) -> ServeResult<QueryResponse> {
        Ok(QueryResponse {
            output: execute_on(&snapshot.sketch, request)?,
            version: snapshot.version,
            total_elements: snapshot.sketch.total_elements(),
            freshness: snapshot.freshness,
        })
    }

    /// The latency histogram of one tenant (created on first use).
    pub fn tenant_histogram(&self, tenant: &TenantId) -> Arc<LatencyHistogram> {
        if let Some(h) = self.tenants.read().get(tenant) {
            return Arc::clone(h);
        }
        let mut tenants = self.tenants.write();
        Arc::clone(
            tenants
                .entry(tenant.clone())
                .or_insert_with(|| Arc::new(LatencyHistogram::new())),
        )
    }

    /// The fleet-wide latency histogram.
    pub fn overall(&self) -> &LatencyHistogram {
        &self.overall
    }

    /// A shared handle to the fleet-wide histogram, so a metric registry
    /// can render cumulative Prometheus buckets from the same instance.
    pub fn overall_shared(&self) -> Arc<LatencyHistogram> {
        Arc::clone(&self.overall)
    }

    /// Per-tenant latency snapshots, sorted by tenant for deterministic
    /// reporting.
    pub fn latency_report(&self) -> Vec<(TenantId, LatencySnapshot)> {
        let mut rows: Vec<_> = self
            .tenants
            .read()
            .iter()
            .map(|(tenant, h)| (tenant.clone(), h.snapshot()))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opaq_core::{IncrementalOpaq, OpaqConfig};

    fn sketch_of(n: u64) -> QuantileSketch<u64> {
        let config = OpaqConfig::builder()
            .run_length(1000)
            .sample_size(100)
            .build()
            .unwrap();
        let mut inc = IncrementalOpaq::new(config).unwrap();
        inc.add_run((0..n).collect()).unwrap();
        inc.into_sketch().unwrap()
    }

    fn engine_with(n: u64) -> (QueryEngine, TenantId, DatasetId) {
        let catalog = Arc::new(SketchCatalog::unbounded());
        let (t, d) = (TenantId::from("t"), DatasetId::from("d"));
        catalog.publish(&t, &d, sketch_of(n)).unwrap();
        (QueryEngine::new(catalog), t, d)
    }

    #[test]
    fn every_request_type_answers_from_one_version() {
        let (engine, t, d) = engine_with(10_000);
        let quantile = engine
            .execute(&t, &d, &QueryRequest::Quantile { phi: 0.5 })
            .unwrap();
        assert_eq!(quantile.version, 1);
        assert_eq!(quantile.total_elements, 10_000);
        assert_eq!(quantile.freshness, Freshness::Fresh);
        let QueryOutput::Quantile(est) = &quantile.output else {
            panic!("wrong output kind")
        };
        assert!(est.lower <= 4_999 && 4_999 <= est.upper);

        let rank = engine
            .execute(&t, &d, &QueryRequest::Rank { key: 2_500 })
            .unwrap();
        let QueryOutput::Rank(bounds) = &rank.output else {
            panic!("wrong output kind")
        };
        assert!(bounds.min_rank <= 2_501 && 2_501 <= bounds.max_rank);

        let batch = engine
            .execute(
                &t,
                &d,
                &QueryRequest::QuantileBatch {
                    phis: vec![0.1, 0.5, 0.9],
                },
            )
            .unwrap();
        let QueryOutput::QuantileBatch(ests) = &batch.output else {
            panic!("wrong output kind")
        };
        assert_eq!(ests.len(), 3);

        let profile = engine
            .execute(&t, &d, &QueryRequest::Profile { count: 10 })
            .unwrap();
        let QueryOutput::Profile(ests) = &profile.output else {
            panic!("wrong output kind")
        };
        assert_eq!(ests.len(), 9);
    }

    #[test]
    fn responses_match_direct_execution_exactly() {
        let (engine, t, d) = engine_with(5_000);
        let direct = sketch_of(5_000);
        for request in [
            QueryRequest::Quantile { phi: 0.25 },
            QueryRequest::Rank { key: 1234 },
            QueryRequest::QuantileBatch {
                phis: vec![0.0, 0.5, 1.0],
            },
            QueryRequest::Profile { count: 4 },
        ] {
            let served = engine.execute(&t, &d, &request).unwrap();
            assert_eq!(served.output, execute_on(&direct, &request).unwrap());
        }
    }

    #[test]
    fn latency_is_recorded_per_tenant_and_overall() {
        let (engine, t, d) = engine_with(1_000);
        for _ in 0..10 {
            engine
                .execute(&t, &d, &QueryRequest::Quantile { phi: 0.5 })
                .unwrap();
        }
        assert_eq!(engine.overall().count(), 10);
        let report = engine.latency_report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].1.count, 10);
        assert!(report[0].1.p50 <= report[0].1.p999);
        // Failed queries (unknown tenant) record nothing.
        assert!(engine
            .execute(
                &TenantId::from("nope"),
                &d,
                &QueryRequest::Quantile { phi: 0.5 }
            )
            .is_err());
        assert_eq!(engine.overall().count(), 10);
    }

    #[test]
    fn invalid_requests_surface_typed_errors() {
        let (engine, t, d) = engine_with(1_000);
        assert!(engine
            .execute(&t, &d, &QueryRequest::Quantile { phi: 1.5 })
            .is_err());
        assert!(engine
            .execute(&t, &d, &QueryRequest::Profile { count: 0 })
            .is_err());
    }

    #[test]
    fn slo_threshold_counts_slow_requests_only_while_armed() {
        let (engine, t, d) = engine_with(1_000);
        let request = QueryRequest::Quantile { phi: 0.5 };
        // Disarmed: nothing counts.
        engine.execute(&t, &d, &request).unwrap();
        assert_eq!(engine.slo_breaches(), 0);
        // An unmeetable threshold: every request breaches.
        engine.set_slo_threshold(Some(Duration::ZERO));
        for _ in 0..3 {
            engine.execute(&t, &d, &request).unwrap();
        }
        assert_eq!(engine.slo_breaches(), 3);
        // A generous threshold: the counter stops moving but keeps history.
        engine.set_slo_threshold(Some(Duration::from_secs(3600)));
        engine.execute(&t, &d, &request).unwrap();
        assert_eq!(engine.slo_breaches(), 3);
        // Disarming keeps history too.
        engine.set_slo_threshold(None);
        engine.execute(&t, &d, &request).unwrap();
        assert_eq!(engine.slo_breaches(), 3);
    }
}
