//! The background refresh pipeline: build new sketch versions off the
//! serving path, publish them with an epoch swap.
//!
//! A [`RefreshPool`] owns a few worker threads fed over a channel.  Each job
//! carries a *builder* closure that produces the new sketch — typically by
//! ingesting new runs with `opaq_parallel::ShardedOpaq` (see
//! [`RefreshPool::submit_ingest`]) or by folding increments into an
//! `IncrementalOpaq` — and the worker publishes the result to the catalog.
//! The catalog's epoch-swap discipline does the rest: readers keep serving
//! the old version for the whole (possibly long) build and flip to the new
//! one at a single pointer swap.

use crate::catalog::{DatasetId, SketchCatalog, TenantId};
use crate::{ServeError, ServeResult};
use crossbeam::channel;
use opaq_core::{OpaqConfig, QuantileSketch};
use opaq_metrics::trace::{SpanRecorder, SpanTag, Stage, TraceId, TraceSink, ROOT_SPAN_ID};
use opaq_parallel::ShardedOpaq;
use opaq_storage::RunStore;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A job's sketch builder; handed the worker's trace sink (when the pool
/// has a span recorder attached) so traced builds — e.g. the sharded
/// ingest — can record child spans under the job's `refresh` root.
type Builder = Box<dyn FnOnce(Option<&TraceSink>) -> ServeResult<QuantileSketch<u64>> + Send>;

struct Job {
    tenant: TenantId,
    dataset: DatasetId,
    build: Builder,
}

#[derive(Default)]
struct Progress {
    submitted: AtomicU64,
    published: AtomicU64,
    failed: AtomicU64,
}

/// A pool of background refresh workers publishing into one catalog.
///
/// Shutdown discipline ([`RefreshPool::shutdown`], also run by `Drop`):
/// **close the queue first, then join the workers.**  Closing first means no
/// new job can be accepted mid-teardown; joining second means every job that
/// *was* accepted is drained — built and published (or recorded as failed) —
/// before shutdown returns.  A server tearing down in the order "HTTP
/// workers, refresh pool, catalog" therefore can never have an in-flight
/// ingest publish into a catalog whose owner already finished tearing down:
/// when `shutdown` returns, the pool is quiescent and will never touch the
/// catalog again.
pub struct RefreshPool {
    catalog: Arc<SketchCatalog>,
    /// `None` once the queue is closed.  Behind a mutex so a concurrent
    /// `submit` either completes its send before the queue closes (and the
    /// job is then drained by the joining workers) or observes the closed
    /// queue and gets a typed [`ServeError::RefreshClosed`] — there is no
    /// window where a submit is accepted but silently dropped.
    tx: Mutex<Option<channel::Sender<Job>>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    progress: Arc<Progress>,
    failures: Arc<Mutex<Vec<(TenantId, DatasetId, ServeError)>>>,
    /// Span recorder for ingest-side traces; shared with the workers, set
    /// (at any time) via [`RefreshPool::set_recorder`].
    recorder: Arc<Mutex<Option<Arc<SpanRecorder>>>>,
}

impl std::fmt::Debug for RefreshPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RefreshPool")
            .field("workers", &self.workers.lock().len())
            .field("submitted", &self.submitted())
            .field("published", &self.published())
            .field("failed", &self.failed())
            .finish()
    }
}

impl RefreshPool {
    /// Spawn a pool of `workers` refresh threads publishing into `catalog`.
    ///
    /// # Errors
    /// [`ServeError::InvalidConfig`] if `workers == 0`.
    pub fn new(catalog: Arc<SketchCatalog>, workers: usize) -> ServeResult<Self> {
        if workers == 0 {
            return Err(ServeError::InvalidConfig(
                "a refresh pool needs at least one worker".into(),
            ));
        }
        let (tx, rx) = channel::unbounded::<Job>();
        // std's Receiver is single-consumer; workers take turns holding it
        // while they wait.  Dispatch is serialized (cheap), the sketch
        // builds — the expensive part — run concurrently.
        let rx = Arc::new(Mutex::new(rx));
        let progress = Arc::new(Progress::default());
        let failures = Arc::new(Mutex::new(Vec::new()));
        let recorder: Arc<Mutex<Option<Arc<SpanRecorder>>>> = Arc::new(Mutex::new(None));
        let workers = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let catalog = Arc::clone(&catalog);
                let progress = Arc::clone(&progress);
                let failures = Arc::clone(&failures);
                let recorder = Arc::clone(&recorder);
                std::thread::Builder::new()
                    .name(format!("opaq-serve-refresh-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let rx = rx.lock();
                            rx.recv()
                        };
                        let Ok(job) = job else {
                            return; // queue closed and drained
                        };
                        // Each job is its own trace, rooted at a `refresh`
                        // span; the builder records children under it.
                        let sink = recorder
                            .lock()
                            .clone()
                            .map(|rec| TraceSink::new(rec, TraceId::mint()));
                        let result = (job.build)(sink.as_ref())
                            .and_then(|sketch| catalog.publish(&job.tenant, &job.dataset, sketch));
                        match result {
                            Ok(_version) => {
                                progress.published.fetch_add(1, Ordering::Release);
                                if let Some(sink) = &sink {
                                    sink.finish_root(Stage::Refresh, SpanTag::Untagged);
                                }
                            }
                            Err(e) => {
                                // A TTL-triggered refresh that dies must not
                                // leave its entry claiming `refreshing`
                                // forever — reopen the trigger.
                                catalog.refresh_aborted(&job.tenant, &job.dataset);
                                failures.lock().push((job.tenant, job.dataset, e));
                                progress.failed.fetch_add(1, Ordering::Release);
                                if let Some(sink) = &sink {
                                    sink.finish_root(Stage::Refresh, SpanTag::Error);
                                }
                            }
                        }
                    })
                    .expect("spawning a refresh worker cannot fail")
            })
            .collect();
        Ok(Self {
            catalog,
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
            progress,
            failures,
            recorder,
        })
    }

    /// Attach the span recorder ingest traces are written to (typically the
    /// server's shared recorder).  Takes effect for jobs dequeued after the
    /// call; jobs run without a recorder are simply untraced.
    pub fn set_recorder(&self, recorder: Arc<SpanRecorder>) {
        *self.recorder.lock() = Some(recorder);
    }

    /// The catalog the pool publishes into.
    pub fn catalog(&self) -> &Arc<SketchCatalog> {
        &self.catalog
    }

    /// Queue a refresh whose new sketch is produced by `build` on a worker
    /// thread.
    ///
    /// # Errors
    /// [`ServeError::RefreshClosed`] if the pool has shut down.
    pub fn submit(
        &self,
        tenant: &TenantId,
        dataset: &DatasetId,
        build: impl FnOnce() -> ServeResult<QuantileSketch<u64>> + Send + 'static,
    ) -> ServeResult<()> {
        self.submit_inner(tenant, dataset, Box::new(move |_sink| build()))
    }

    /// Queue a builder that receives the worker's trace sink (when a
    /// recorder is attached), so the build can record child spans under the
    /// job's `refresh` root span.
    fn submit_inner(
        &self,
        tenant: &TenantId,
        dataset: &DatasetId,
        build: Builder,
    ) -> ServeResult<()> {
        // Hold the sender lock across the send: either the whole submission
        // lands before a concurrent `shutdown` takes the sender (and the
        // drain-then-join discipline guarantees it completes), or it fails
        // with the typed error.  An accepted submit is never half-dropped.
        let tx = self.tx.lock();
        let Some(tx) = tx.as_ref() else {
            return Err(ServeError::RefreshClosed);
        };
        tx.send(Job {
            tenant: tenant.clone(),
            dataset: dataset.clone(),
            build,
        })
        .map_err(|_| ServeError::RefreshClosed)?;
        // Count only after the send succeeded, so `submitted` is exactly
        // the number of jobs the queue accepted and `wait_idle` can never
        // wait on a job that was rejected.
        self.progress.submitted.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Queue a full re-ingest of `store` through the sharded multi-threaded
    /// ingestion path (`threads` worker threads inside the build; the result
    /// is bit-identical to a sequential ingest for any count).
    pub fn submit_ingest<S>(
        &self,
        tenant: &TenantId,
        dataset: &DatasetId,
        store: Arc<S>,
        config: OpaqConfig,
        threads: usize,
    ) -> ServeResult<()>
    where
        S: RunStore<u64> + Send + Sync + 'static,
    {
        let sharded = ShardedOpaq::new(config, threads)?;
        self.submit_inner(
            tenant,
            dataset,
            Box::new(move |sink| match sink {
                Some(sink) => Ok(sharded
                    .build_sketch_traced(&*store, sink, ROOT_SPAN_ID)
                    .map(|(sketch, _)| sketch)?),
                None => Ok(sharded.build_sketch(&*store)?),
            }),
        )
    }

    /// Refreshes queued so far.
    pub fn submitted(&self) -> u64 {
        self.progress.submitted.load(Ordering::Acquire)
    }

    /// Refreshes successfully published so far.
    pub fn published(&self) -> u64 {
        self.progress.published.load(Ordering::Acquire)
    }

    /// Refreshes that failed (build or publish error).
    pub fn failed(&self) -> u64 {
        self.progress.failed.load(Ordering::Acquire)
    }

    /// Drain the recorded failures.
    pub fn take_failures(&self) -> Vec<(TenantId, DatasetId, ServeError)> {
        std::mem::take(&mut self.failures.lock())
    }

    /// Shut the pool down: close the queue, then join every worker.
    ///
    /// Safe to call from any thread, any number of times (later calls are
    /// no-ops), and concurrently with `submit` — a submit either completes
    /// before the queue closes (its job is then drained before this method
    /// returns) or fails with [`ServeError::RefreshClosed`].  After
    /// `shutdown` returns the pool is quiescent: every accepted job has
    /// been published or recorded as failed, and no worker will ever touch
    /// the catalog again.
    pub fn shutdown(&self) {
        // 1. Close the queue.  Taking the sender out under the lock
        //    linearizes against `submit`: no job can be accepted after this
        //    point.
        let tx = self.tx.lock().take();
        drop(tx);
        // 2. Join the workers.  The channel reports disconnection only
        //    after it is both closed *and* drained, so every worker first
        //    finishes the jobs that were accepted, then exits.  Taking the
        //    handles out under their own lock makes concurrent shutdowns
        //    join disjoint (possibly empty) sets instead of racing.
        let workers: Vec<_> = self.workers.lock().drain(..).collect();
        for worker in workers {
            let _ = worker.join();
        }
    }

    /// Whether [`Self::shutdown`] has closed the queue.
    pub fn is_shut_down(&self) -> bool {
        self.tx.lock().is_none()
    }

    /// Block until every submitted refresh has been published or failed, or
    /// `timeout` elapses; returns whether the pool went idle in time.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let done = self.published() + self.failed();
            if done >= self.submitted() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

impl Drop for RefreshPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opaq_core::OpaqError;
    use opaq_storage::MemRunStore;

    fn config() -> OpaqConfig {
        OpaqConfig::builder()
            .run_length(1000)
            .sample_size(100)
            .build()
            .unwrap()
    }

    fn ids() -> (TenantId, DatasetId) {
        (TenantId::from("t"), DatasetId::from("d"))
    }

    #[test]
    fn background_ingest_publishes_the_sharded_sketch() {
        let catalog = Arc::new(SketchCatalog::unbounded());
        let pool = RefreshPool::new(Arc::clone(&catalog), 2).unwrap();
        let (t, d) = ids();
        let store = Arc::new(MemRunStore::new((0u64..10_000).collect(), 1000));
        pool.submit_ingest(&t, &d, Arc::clone(&store), config(), 2)
            .unwrap();
        assert!(pool.wait_idle(Duration::from_secs(10)));
        assert_eq!(pool.published(), 1);
        let snap = catalog.snapshot(&t, &d).unwrap();
        assert_eq!(snap.version, 1);
        // Bit-identical to the direct sharded build.
        let direct = ShardedOpaq::new(config(), 2)
            .unwrap()
            .build_sketch(&*store)
            .unwrap();
        assert_eq!(*snap.sketch, direct);
    }

    #[test]
    fn sequential_submissions_stack_versions() {
        let catalog = Arc::new(SketchCatalog::unbounded());
        let pool = RefreshPool::new(Arc::clone(&catalog), 1).unwrap();
        let (t, d) = ids();
        for round in 1..=5u64 {
            pool.submit(&t, &d, move || {
                let mut inc = opaq_core::IncrementalOpaq::new(
                    OpaqConfig::builder()
                        .run_length(100)
                        .sample_size(10)
                        .build()
                        .unwrap(),
                )
                .unwrap();
                inc.add_run((0..round * 100).collect()).unwrap();
                Ok(inc.into_sketch().unwrap())
            })
            .unwrap();
        }
        assert!(pool.wait_idle(Duration::from_secs(10)));
        let snap = catalog.snapshot(&t, &d).unwrap();
        // One worker: jobs run in order, so version 5 summarises 500 keys.
        assert_eq!(snap.version, 5);
        assert_eq!(snap.sketch.total_elements(), 500);
    }

    #[test]
    fn failures_are_recorded_not_published() {
        let catalog = Arc::new(SketchCatalog::unbounded());
        let pool = RefreshPool::new(Arc::clone(&catalog), 2).unwrap();
        let (t, d) = ids();
        pool.submit(&t, &d, || Err(ServeError::Opaq(OpaqError::EmptyDataset)))
            .unwrap();
        assert!(pool.wait_idle(Duration::from_secs(10)));
        assert_eq!(pool.failed(), 1);
        assert_eq!(pool.published(), 0);
        let failures = pool.take_failures();
        assert_eq!(failures.len(), 1);
        assert!(!catalog.contains(&t, &d));
        assert!(pool.take_failures().is_empty(), "drained");
    }

    #[test]
    fn zero_workers_rejected_and_drop_joins() {
        let catalog = Arc::new(SketchCatalog::unbounded());
        assert!(matches!(
            RefreshPool::new(Arc::clone(&catalog), 0),
            Err(ServeError::InvalidConfig(_))
        ));
        let pool = RefreshPool::new(Arc::clone(&catalog), 3).unwrap();
        let (t, d) = ids();
        pool.submit(&t, &d, || {
            let mut inc = opaq_core::IncrementalOpaq::new(
                OpaqConfig::builder()
                    .run_length(100)
                    .sample_size(10)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            inc.add_run((0..100).collect()).unwrap();
            Ok(inc.into_sketch().unwrap())
        })
        .unwrap();
        drop(pool); // joins workers; the queued job completes first
        assert!(catalog.contains(&t, &d));
    }

    #[test]
    fn explicit_shutdown_drains_then_rejects() {
        let catalog = Arc::new(SketchCatalog::unbounded());
        let pool = RefreshPool::new(Arc::clone(&catalog), 2).unwrap();
        let (t, d) = ids();
        let store = Arc::new(MemRunStore::new((0u64..5_000).collect(), 1000));
        for _ in 0..4 {
            pool.submit_ingest(&t, &d, Arc::clone(&store), config(), 1)
                .unwrap();
        }
        assert!(!pool.is_shut_down());
        pool.shutdown();
        assert!(pool.is_shut_down());
        // Every accepted job drained before shutdown returned.
        assert_eq!(pool.published() + pool.failed(), pool.submitted());
        assert_eq!(catalog.snapshot(&t, &d).unwrap().version, 4);
        // Closed queue rejects with the typed error; shutdown is idempotent.
        assert!(matches!(
            pool.submit_ingest(&t, &d, store, config(), 1),
            Err(ServeError::RefreshClosed)
        ));
        pool.shutdown();
    }

    #[test]
    fn traced_ingest_records_refresh_root_with_ingest_children() {
        let catalog = Arc::new(SketchCatalog::unbounded());
        let pool = RefreshPool::new(Arc::clone(&catalog), 2).unwrap();
        let recorder = Arc::new(SpanRecorder::new(64));
        pool.set_recorder(Arc::clone(&recorder));
        let (t, d) = ids();
        let store = Arc::new(MemRunStore::new((0u64..10_000).collect(), 1000));
        pool.submit_ingest(&t, &d, Arc::clone(&store), config(), 2)
            .unwrap();
        assert!(pool.wait_idle(Duration::from_secs(10)));
        let spans = recorder.spans();
        let roots: Vec<_> = spans.iter().filter(|s| s.stage == Stage::Refresh).collect();
        assert_eq!(roots.len(), 1, "one refresh root per job");
        assert_eq!(roots[0].span_id, ROOT_SPAN_ID);
        assert_eq!(roots[0].tag, SpanTag::Untagged);
        let trace = roots[0].trace;
        let ingests = spans
            .iter()
            .filter(|s| s.trace == trace && s.stage == Stage::Ingest)
            .count();
        assert!(ingests >= 1, "sharded build recorded ingest spans");
        // A failing job roots an error-tagged refresh span.
        pool.submit(&t, &d, || Err(ServeError::Opaq(OpaqError::EmptyDataset)))
            .unwrap();
        assert!(pool.wait_idle(Duration::from_secs(10)));
        assert!(recorder
            .spans()
            .iter()
            .any(|s| s.stage == Stage::Refresh && s.tag == SpanTag::Error));
    }

    #[test]
    fn ttl_hook_routes_expired_entries_through_the_pool() {
        let catalog = Arc::new(SketchCatalog::unbounded());
        let pool = Arc::new(RefreshPool::new(Arc::clone(&catalog), 1).unwrap());
        let (t, d) = ids();
        let store = Arc::new(MemRunStore::new((0u64..10_000).collect(), 1000));
        pool.submit_ingest(&t, &d, Arc::clone(&store), config(), 1)
            .unwrap();
        assert!(pool.wait_idle(Duration::from_secs(10)));
        catalog.set_ttl(&t, &d, Some(Duration::ZERO)).unwrap();

        // Weak hook: no Arc cycle between catalog and pool, and a hook that
        // outlives the pool degrades to `stale` instead of dangling.
        let weak = Arc::downgrade(&pool);
        let hook_store = Arc::clone(&store);
        catalog.set_refresh_hook(Box::new(move |tenant, dataset| {
            let Some(pool) = weak.upgrade() else {
                return false;
            };
            pool.submit_ingest(
                tenant,
                dataset,
                Arc::clone(&hook_store),
                OpaqConfig::builder()
                    .run_length(1000)
                    .sample_size(100)
                    .build()
                    .unwrap(),
                1,
            )
            .is_ok()
        }));

        // Expired snapshot triggers the background re-ingest; once it
        // publishes, the version has bumped and the entry is fresh again
        // (TTL zero => immediately stale again on the *next* read, so check
        // the version bump rather than a fresh tag).
        let before = catalog.snapshot(&t, &d).unwrap();
        assert_eq!(before.freshness, crate::Freshness::Refreshing);
        assert_eq!(before.version, 1);
        assert!(pool.wait_idle(Duration::from_secs(10)));
        assert_eq!(pool.published(), 2);
        let after = catalog.snapshot(&t, &d).unwrap();
        assert_eq!(after.version, 2);
    }
}
