//! The background refresh pipeline: build new sketch versions off the
//! serving path, publish them with an epoch swap.
//!
//! A [`RefreshPool`] owns a few worker threads fed over a channel.  Each job
//! carries a *builder* closure that produces the new sketch — typically by
//! ingesting new runs with `opaq_parallel::ShardedOpaq` (see
//! [`RefreshPool::submit_ingest`]) or by folding increments into an
//! `IncrementalOpaq` — and the worker publishes the result to the catalog.
//! The catalog's epoch-swap discipline does the rest: readers keep serving
//! the old version for the whole (possibly long) build and flip to the new
//! one at a single pointer swap.

use crate::catalog::{DatasetId, SketchCatalog, TenantId};
use crate::{ServeError, ServeResult};
use crossbeam::channel;
use opaq_core::{OpaqConfig, QuantileSketch};
use opaq_parallel::ShardedOpaq;
use opaq_storage::RunStore;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

type Builder = Box<dyn FnOnce() -> ServeResult<QuantileSketch<u64>> + Send>;

struct Job {
    tenant: TenantId,
    dataset: DatasetId,
    build: Builder,
}

#[derive(Default)]
struct Progress {
    submitted: AtomicU64,
    published: AtomicU64,
    failed: AtomicU64,
}

/// A pool of background refresh workers publishing into one catalog.
///
/// Dropping the pool closes the queue and joins every worker, so queued
/// refreshes finish (or fail) before the drop returns.
pub struct RefreshPool {
    catalog: Arc<SketchCatalog>,
    tx: Option<channel::Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    progress: Arc<Progress>,
    failures: Arc<Mutex<Vec<(TenantId, DatasetId, ServeError)>>>,
}

impl std::fmt::Debug for RefreshPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RefreshPool")
            .field("workers", &self.workers.len())
            .field("submitted", &self.submitted())
            .field("published", &self.published())
            .field("failed", &self.failed())
            .finish()
    }
}

impl RefreshPool {
    /// Spawn a pool of `workers` refresh threads publishing into `catalog`.
    ///
    /// # Errors
    /// [`ServeError::InvalidConfig`] if `workers == 0`.
    pub fn new(catalog: Arc<SketchCatalog>, workers: usize) -> ServeResult<Self> {
        if workers == 0 {
            return Err(ServeError::InvalidConfig(
                "a refresh pool needs at least one worker".into(),
            ));
        }
        let (tx, rx) = channel::unbounded::<Job>();
        // std's Receiver is single-consumer; workers take turns holding it
        // while they wait.  Dispatch is serialized (cheap), the sketch
        // builds — the expensive part — run concurrently.
        let rx = Arc::new(Mutex::new(rx));
        let progress = Arc::new(Progress::default());
        let failures = Arc::new(Mutex::new(Vec::new()));
        let workers = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let catalog = Arc::clone(&catalog);
                let progress = Arc::clone(&progress);
                let failures = Arc::clone(&failures);
                std::thread::Builder::new()
                    .name(format!("opaq-serve-refresh-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let rx = rx.lock();
                            rx.recv()
                        };
                        let Ok(job) = job else {
                            return; // queue closed and drained
                        };
                        let result = (job.build)()
                            .and_then(|sketch| catalog.publish(&job.tenant, &job.dataset, sketch));
                        match result {
                            Ok(_version) => {
                                progress.published.fetch_add(1, Ordering::Release);
                            }
                            Err(e) => {
                                failures.lock().push((job.tenant, job.dataset, e));
                                progress.failed.fetch_add(1, Ordering::Release);
                            }
                        }
                    })
                    .expect("spawning a refresh worker cannot fail")
            })
            .collect();
        Ok(Self {
            catalog,
            tx: Some(tx),
            workers,
            progress,
            failures,
        })
    }

    /// The catalog the pool publishes into.
    pub fn catalog(&self) -> &Arc<SketchCatalog> {
        &self.catalog
    }

    /// Queue a refresh whose new sketch is produced by `build` on a worker
    /// thread.
    ///
    /// # Errors
    /// [`ServeError::RefreshClosed`] if the pool has shut down.
    pub fn submit(
        &self,
        tenant: &TenantId,
        dataset: &DatasetId,
        build: impl FnOnce() -> ServeResult<QuantileSketch<u64>> + Send + 'static,
    ) -> ServeResult<()> {
        let Some(tx) = &self.tx else {
            return Err(ServeError::RefreshClosed);
        };
        self.progress.submitted.fetch_add(1, Ordering::Release);
        tx.send(Job {
            tenant: tenant.clone(),
            dataset: dataset.clone(),
            build: Box::new(build),
        })
        .map_err(|_| ServeError::RefreshClosed)
    }

    /// Queue a full re-ingest of `store` through the sharded multi-threaded
    /// ingestion path (`threads` worker threads inside the build; the result
    /// is bit-identical to a sequential ingest for any count).
    pub fn submit_ingest<S>(
        &self,
        tenant: &TenantId,
        dataset: &DatasetId,
        store: Arc<S>,
        config: OpaqConfig,
        threads: usize,
    ) -> ServeResult<()>
    where
        S: RunStore<u64> + Send + Sync + 'static,
    {
        let sharded = ShardedOpaq::new(config, threads)?;
        self.submit(tenant, dataset, move || Ok(sharded.build_sketch(&*store)?))
    }

    /// Refreshes queued so far.
    pub fn submitted(&self) -> u64 {
        self.progress.submitted.load(Ordering::Acquire)
    }

    /// Refreshes successfully published so far.
    pub fn published(&self) -> u64 {
        self.progress.published.load(Ordering::Acquire)
    }

    /// Refreshes that failed (build or publish error).
    pub fn failed(&self) -> u64 {
        self.progress.failed.load(Ordering::Acquire)
    }

    /// Drain the recorded failures.
    pub fn take_failures(&self) -> Vec<(TenantId, DatasetId, ServeError)> {
        std::mem::take(&mut self.failures.lock())
    }

    /// Block until every submitted refresh has been published or failed, or
    /// `timeout` elapses; returns whether the pool went idle in time.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let done = self.published() + self.failed();
            if done >= self.submitted() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

impl Drop for RefreshPool {
    fn drop(&mut self) {
        self.tx = None; // close the queue; workers drain and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opaq_core::OpaqError;
    use opaq_storage::MemRunStore;

    fn config() -> OpaqConfig {
        OpaqConfig::builder()
            .run_length(1000)
            .sample_size(100)
            .build()
            .unwrap()
    }

    fn ids() -> (TenantId, DatasetId) {
        (TenantId::from("t"), DatasetId::from("d"))
    }

    #[test]
    fn background_ingest_publishes_the_sharded_sketch() {
        let catalog = Arc::new(SketchCatalog::unbounded());
        let pool = RefreshPool::new(Arc::clone(&catalog), 2).unwrap();
        let (t, d) = ids();
        let store = Arc::new(MemRunStore::new((0u64..10_000).collect(), 1000));
        pool.submit_ingest(&t, &d, Arc::clone(&store), config(), 2)
            .unwrap();
        assert!(pool.wait_idle(Duration::from_secs(10)));
        assert_eq!(pool.published(), 1);
        let snap = catalog.snapshot(&t, &d).unwrap();
        assert_eq!(snap.version, 1);
        // Bit-identical to the direct sharded build.
        let direct = ShardedOpaq::new(config(), 2)
            .unwrap()
            .build_sketch(&*store)
            .unwrap();
        assert_eq!(*snap.sketch, direct);
    }

    #[test]
    fn sequential_submissions_stack_versions() {
        let catalog = Arc::new(SketchCatalog::unbounded());
        let pool = RefreshPool::new(Arc::clone(&catalog), 1).unwrap();
        let (t, d) = ids();
        for round in 1..=5u64 {
            pool.submit(&t, &d, move || {
                let mut inc = opaq_core::IncrementalOpaq::new(
                    OpaqConfig::builder()
                        .run_length(100)
                        .sample_size(10)
                        .build()
                        .unwrap(),
                )
                .unwrap();
                inc.add_run((0..round * 100).collect()).unwrap();
                Ok(inc.into_sketch().unwrap())
            })
            .unwrap();
        }
        assert!(pool.wait_idle(Duration::from_secs(10)));
        let snap = catalog.snapshot(&t, &d).unwrap();
        // One worker: jobs run in order, so version 5 summarises 500 keys.
        assert_eq!(snap.version, 5);
        assert_eq!(snap.sketch.total_elements(), 500);
    }

    #[test]
    fn failures_are_recorded_not_published() {
        let catalog = Arc::new(SketchCatalog::unbounded());
        let pool = RefreshPool::new(Arc::clone(&catalog), 2).unwrap();
        let (t, d) = ids();
        pool.submit(&t, &d, || Err(ServeError::Opaq(OpaqError::EmptyDataset)))
            .unwrap();
        assert!(pool.wait_idle(Duration::from_secs(10)));
        assert_eq!(pool.failed(), 1);
        assert_eq!(pool.published(), 0);
        let failures = pool.take_failures();
        assert_eq!(failures.len(), 1);
        assert!(!catalog.contains(&t, &d));
        assert!(pool.take_failures().is_empty(), "drained");
    }

    #[test]
    fn zero_workers_rejected_and_drop_joins() {
        let catalog = Arc::new(SketchCatalog::unbounded());
        assert!(matches!(
            RefreshPool::new(Arc::clone(&catalog), 0),
            Err(ServeError::InvalidConfig(_))
        ));
        let pool = RefreshPool::new(Arc::clone(&catalog), 3).unwrap();
        let (t, d) = ids();
        pool.submit(&t, &d, || {
            let mut inc = opaq_core::IncrementalOpaq::new(
                OpaqConfig::builder()
                    .run_length(100)
                    .sample_size(10)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            inc.add_run((0..100).collect()).unwrap();
            Ok(inc.into_sketch().unwrap())
        })
        .unwrap();
        drop(pool); // joins workers; the queued job completes first
        assert!(catalog.contains(&t, &d));
    }
}
