//! # opaq-serve — concurrent multi-tenant sketch serving
//!
//! OPAQ's whole point is that one I/O-efficient pass yields a tiny sketch
//! that can answer *any* quantile query afterwards.  This crate is the layer
//! that actually faces that query traffic: a versioned, multi-tenant catalog
//! of immutable sketch snapshots, a typed query engine with per-tenant
//! latency accounting, a background refresh pipeline, and a load-generator
//! harness that drives all of it under concurrent read/refresh workloads.
//!
//! ## Architecture
//!
//! ```text
//!  client threads                    refresh workers (opaq-parallel ingest)
//!       │ execute(tenant, dataset, request)      │ build new sketch
//!       ▼                                        ▼
//!  ┌─────────────┐    snapshot()          ┌──────────────┐
//!  │ QueryEngine │ ─────────────────────▶ │ SketchCatalog │ ◀── publish()
//!  │  (latency   │   Arc<QuantileSketch>  │  (tenant,     │     epoch swap
//!  │  histograms)│   + version epoch      │   dataset) →  │
//!  └─────────────┘                        │  versioned    │ ──▶ LRU spill to
//!                                         │  entries      │     sketch files
//!                                         └──────────────┘ ◀── reload
//! ```
//!
//! * **Catalog epochs** ([`catalog`]): every `(tenant, dataset)` entry holds
//!   an immutable `Arc<QuantileSketch<u64>>` tagged with a monotonically
//!   increasing *version*.  Publication is an epoch swap: the writer builds
//!   the new sketch entirely outside any lock, then replaces the `Arc` under
//!   a per-entry write lock held only for the pointer swap.  Readers clone
//!   the `Arc` under the corresponding read lock — a few instructions — and
//!   then query their snapshot with no locks at all, so a reader can never
//!   observe a half-published sketch, and an in-flight query keeps its old
//!   snapshot alive even while newer versions land.
//! * **Eviction** ([`catalog`]): the catalog has an optional resident budget
//!   in sample points (the paper's `r·s` memory unit).  When publications
//!   push the resident total over budget, the least-recently-touched entries
//!   are written out through [`opaq_storage::sketch_codec`] — the same
//!   versioned, checksummed format the CLI persists — and dropped from
//!   memory; the next query for a spilled tenant transparently reloads and
//!   re-validates the sketch.
//! * **Queries** ([`query`]): typed requests — `Quantile{phi}`, `Rank{key}`,
//!   `QuantileBatch{phis}`, `Profile{count}` — executed against one snapshot,
//!   so a batch is answered by a single consistent version.  Every execution
//!   is recorded in lock-free per-tenant latency histograms
//!   ([`opaq_metrics::latency`]) plus a fleet-wide one (p50/p99/p999).
//! * **Refresh pipeline** ([`refresh`]): a small worker pool that ingests new
//!   data in the background — via `opaq_parallel::ShardedOpaq` or any
//!   caller-supplied builder — and publishes the result as the entry's next
//!   version.  Readers are never blocked by an in-progress build, and
//!   shutdown closes the queue *before* joining the workers, so every
//!   accepted refresh drains (publishes or fails) before teardown completes.
//! * **TTL / staleness** ([`catalog`]): entries may carry a `max_age`
//!   (per-entry [`SketchCatalog::set_ttl`] or catalog-wide default).  Expired
//!   entries keep serving their last complete version, tagged
//!   [`Freshness::Stale`] — or [`Freshness::Refreshing`] once the first
//!   expired access routed the entry to the installed refresh hook (at most
//!   one in-flight refresh per entry); the next publish resets both clock
//!   and tag.  The tag rides on every [`QueryResponse`] and, through
//!   `opaq-net`, on every HTTP response's `X-Opaq-Freshness` header.
//! * **Load generator** ([`load`]): replays a mixed read/refresh workload
//!   across N client threads and M tenants, verifies *every* response
//!   byte-for-byte against a directly-computed estimate from the version it
//!   claims to have served (catching torn reads), and reports per-tenant and
//!   overall latency distributions.  With [`WorkloadSpec::target_qps`] the
//!   clients switch from closed-loop to **open-loop** rate control: each op
//!   has a fixed scheduled send time and its latency is measured from that
//!   schedule, so an overloaded server accrues queueing delay in the
//!   recorded distribution instead of silently throttling the offered load
//!   (coordinated-omission-safe).
//!
//! ## Durability model
//!
//! With [`CatalogConfig::data_dir`] set the catalog is **durable**: the data
//! directory holds a write-ahead publication log
//! ([`opaq_storage::manifest`], file [`catalog::MANIFEST_FILE`]) plus one
//! checksummed sketch file per live published version.  What is guaranteed
//! after which fsync point:
//!
//! 1. **Sketch write** — the new version's bytes are written to their own
//!    per-version file and `fsync`ed *before* anything announces them.  A
//!    crash here leaves an orphan file no record points at; recovery deletes
//!    it and counts it ([`CatalogStats::orphan_spills_removed`]).  The old
//!    version is untouched and still authoritative.
//! 2. **Manifest append** — one `Publish` record (tenant, dataset, version,
//!    TTL, sketch file name) is appended and `fsync`ed.  *This is the commit
//!    point*: once the append returns, a restart rebuilds the new version;
//!    before it, a restart rebuilds the old one.  A crash mid-append leaves
//!    a torn tail that replay truncates — never a half-announced version.
//! 3. **Epoch swap** — only after both syncs does the in-memory slot change,
//!    so readers can never observe a version that a crash could un-publish.
//!    The superseded version's file is deleted after the swap; a crash
//!    between append and delete leaves it as an orphan for recovery to reap.
//!
//! `Evict` and `TtlSet` records follow the same append-then-apply order.
//! Eviction in durable mode never rewrites bytes: the per-version file
//! written at publish *is* the spill tier, so evicting is just "log it, drop
//! residency".  A restarted catalog ([`SketchCatalog::new`] over the same
//! data dir) replays the log, restores every entry memory-cold with its
//! exact version and TTL (ages measured from recovery — an entry is never
//! *born* stale), truncates any torn tail, and surfaces damaged records as
//! typed [`opaq_storage::StorageError::Corrupt`] rather than guessing.  The
//! next publish continues the version sequence where the log left off,
//! which is what lets the byte-for-byte workload verifier keep passing
//! across a kill-and-restart cycle.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod catalog;
pub mod load;
pub mod query;
pub mod refresh;

pub use catalog::{
    CatalogConfig, CatalogConfigBuilder, CatalogStats, DatasetId, Freshness, InventoryEntry,
    RecoveryReport, RefreshHook, SketchCatalog, SketchSnapshot, SnapshotOrigin, TenantId,
    MANIFEST_FILE,
};
pub use load::{chunk_spec, next_rand, request_for, run_workload, LoadReport, WorkloadSpec};
pub use query::{execute_on, QueryEngine, QueryOutput, QueryRequest, QueryResponse};
pub use refresh::RefreshPool;

use opaq_core::OpaqError;
use opaq_storage::StorageError;
use std::fmt;

/// Errors surfaced by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// No sketch has ever been published for the requested entry.
    UnknownEntry {
        /// The tenant that was addressed.
        tenant: TenantId,
        /// The dataset that was addressed.
        dataset: DatasetId,
    },
    /// The catalog configuration is inconsistent (e.g. an eviction budget
    /// without a spill directory to evict into).
    InvalidConfig(String),
    /// The refresh pool has shut down and accepts no further jobs.
    RefreshClosed,
    /// A replicated publish offered a version that does not move the entry
    /// forward — version vectors are monotone, so applying it would let a
    /// stale peer roll back a newer answer.
    StaleVersion {
        /// The tenant that was addressed.
        tenant: TenantId,
        /// The dataset that was addressed.
        dataset: DatasetId,
        /// The entry's current version.
        current: u64,
        /// The version the publish tried to apply.
        offered: u64,
    },
    /// The underlying OPAQ core reported an error.
    Opaq(OpaqError),
    /// The storage layer (spill/reload codec) reported an error.
    Storage(StorageError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownEntry { tenant, dataset } => {
                write!(
                    f,
                    "no sketch published for tenant '{tenant}' dataset '{dataset}'"
                )
            }
            ServeError::InvalidConfig(msg) => write!(f, "invalid catalog configuration: {msg}"),
            ServeError::RefreshClosed => write!(f, "refresh pool has shut down"),
            ServeError::StaleVersion {
                tenant,
                dataset,
                current,
                offered,
            } => write!(
                f,
                "stale replicated publish for tenant '{tenant}' dataset '{dataset}': \
                 offered version {offered} does not advance current version {current}"
            ),
            ServeError::Opaq(e) => write!(f, "{e}"),
            ServeError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Opaq(e) => Some(e),
            ServeError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OpaqError> for ServeError {
    fn from(e: OpaqError) -> Self {
        ServeError::Opaq(e)
    }
}

impl From<StorageError> for ServeError {
    fn from(e: StorageError) -> Self {
        ServeError::Storage(e)
    }
}

/// Convenience alias for results in this crate.
pub type ServeResult<T> = Result<T, ServeError>;
