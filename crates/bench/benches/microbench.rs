//! Criterion micro-benchmarks for the OPAQ building blocks.
//!
//! These complement the table/figure binaries: they measure the hot paths
//! (multi-selection, the sample phase, the quantile phase, the global merge
//! algorithms and the baselines) on fixed-size inputs so regressions show up
//! in `cargo bench`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use opaq_baselines::{
    AdaptiveIntervalEstimator, P2Estimator, ReservoirSampler, StreamingEstimator,
};
use opaq_core::{sample_run, OpaqConfig, OpaqEstimator};
use opaq_datagen::{DatasetSpec, KeyGenerator, UniformGenerator};
use opaq_parallel::{bitonic_merge, sample_merge, CostModel, Machine};
use opaq_select::{multiselect_with, regular_sample_ranks, SelectionStrategy};
use opaq_storage::MemRunStore;

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    group.sample_size(20);
    let data = UniformGenerator::new(1, u32::MAX as u64).generate(100_000);
    let ranks = regular_sample_ranks(data.len(), 1000);

    for strategy in [
        SelectionStrategy::Quickselect,
        SelectionStrategy::MedianOfMedians,
        SelectionStrategy::FloydRivest,
    ] {
        group.bench_with_input(
            BenchmarkId::new("multiselect_1000_of_100k", format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let mut work = data.clone();
                    black_box(multiselect_with(&mut work, &ranks, strategy))
                })
            },
        );
    }
    group.bench_function("full_sort_100k_for_reference", |b| {
        b.iter(|| {
            let mut work = data.clone();
            work.sort_unstable();
            black_box(work.len())
        })
    });
    group.finish();
}

fn bench_sample_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample_phase");
    group.sample_size(15);
    for &s in &[250u64, 1000] {
        let data = UniformGenerator::new(2, u32::MAX as u64).generate(100_000);
        group.bench_with_input(BenchmarkId::new("sample_run_100k", s), &s, |b, &s| {
            b.iter(|| {
                let mut run = data.clone();
                black_box(sample_run(&mut run, s, SelectionStrategy::default()).unwrap())
            })
        });
    }
    let data = DatasetSpec::paper_uniform(500_000, 3).generate();
    let store = MemRunStore::new(data, 50_000);
    let config = OpaqConfig::builder()
        .run_length(50_000)
        .sample_size(1000)
        .build()
        .unwrap();
    group.bench_function("build_sketch_500k_keys_10_runs", |b| {
        b.iter(|| black_box(OpaqEstimator::new(config).build_sketch(&store).unwrap()))
    });
    group.finish();
}

fn bench_quantile_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantile_phase");
    group.sample_size(30);
    let data = DatasetSpec::paper_uniform(500_000, 4).generate();
    let store = MemRunStore::new(data, 50_000);
    let config = OpaqConfig::builder()
        .run_length(50_000)
        .sample_size(1000)
        .build()
        .unwrap();
    let sketch = OpaqEstimator::new(config).build_sketch(&store).unwrap();
    // The paper claims O(1)-ish cost per additional quantile once the sample
    // list exists; these two benches make the claim measurable.
    group.bench_function("single_quantile", |b| {
        b.iter(|| black_box(sketch.estimate(0.5).unwrap()))
    });
    group.bench_function("ninety_nine_quantiles", |b| {
        b.iter(|| black_box(sketch.estimate_q_quantiles(100).unwrap()))
    });
    group.finish();
}

fn bench_global_merges(c: &mut Criterion) {
    let mut group = c.benchmark_group("global_merge");
    group.sample_size(10);
    for &per in &[4_096usize, 65_536] {
        let lists: Vec<Vec<u64>> = (0..8u64)
            .map(|pid| {
                let mut l = UniformGenerator::new(pid, u32::MAX as u64).generate(per);
                l.sort_unstable();
                l
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("bitonic_p8", per), &per, |b, _| {
            b.iter(|| {
                let machine = Machine::new(8, CostModel::sp2());
                black_box(bitonic_merge(&machine, lists.clone()))
            })
        });
        group.bench_with_input(BenchmarkId::new("sample_p8", per), &per, |b, _| {
            b.iter(|| {
                let machine = Machine::new(8, CostModel::sp2());
                black_box(sample_merge(&machine, lists.clone()))
            })
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines_observe_100k");
    group.sample_size(15);
    let data = UniformGenerator::new(9, u32::MAX as u64).generate(100_000);
    group.bench_function("reservoir_3000", |b| {
        b.iter(|| {
            let mut est = ReservoirSampler::new(3000, 1);
            est.observe_all(&data);
            black_box(est.estimate(0.5))
        })
    });
    group.bench_function("adaptive_intervals_3000", |b| {
        b.iter(|| {
            let mut est = AdaptiveIntervalEstimator::new(3000);
            est.observe_all(&data);
            black_box(est.estimate(0.5))
        })
    });
    group.bench_function("p2_median", |b| {
        b.iter(|| {
            let mut est = P2Estimator::new(0.5);
            est.observe_all(&data);
            black_box(est.estimate(0.5))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_selection,
    bench_sample_phase,
    bench_quantile_phase,
    bench_global_merges,
    bench_baselines
);
criterion_main!(benches);
