//! Query-plan microbenchmarks: what the composable pipeline costs next to
//! the single-target engine path it subsumes.
//!
//! Before any timing, a consistency gate re-derives the plan answers
//! offline: the coalescing plan's output must equal fusing the same
//! snapshots by hand with `merge_tree` and querying the fused sketch, with
//! every tenant accounted for in the provenance; and the degenerate
//! single-target plan must equal `QueryEngine::execute`.  A divergence
//! fails `cargo bench` before a single measurement.
//!
//! Then criterion times three things: parsing plan text, the degenerate
//! single-target plan against the engine's direct path (the api_redesign
//! overhead question — the GET routes now go through the executor), and the
//! glob fan-out + merge-tree coalesce at increasing tenant counts.
//!
//! Set `OPAQ_BENCH_QUICK=1` (per-PR CI smoke) to shrink the datasets; the
//! consistency gate runs at full strength either way.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use opaq_core::{IncrementalOpaq, OpaqConfig};
use opaq_datagen::{DatasetSpec, Distribution};
use opaq_query::{merge_tree, PlanExecutor, QueryPlan};
use opaq_serve::{execute_on, DatasetId, QueryEngine, QueryRequest, SketchCatalog, TenantId};
use std::sync::Arc;

fn quick_mode() -> bool {
    std::env::var_os("OPAQ_BENCH_QUICK").is_some()
}

fn catalog_with_tenants(tenants: usize) -> Arc<SketchCatalog> {
    let keys_per_tenant = if quick_mode() { 20_000 } else { 100_000 };
    let config = OpaqConfig::builder()
        .run_length(5_000)
        .sample_size(500)
        .build()
        .unwrap();
    let catalog = Arc::new(SketchCatalog::unbounded());
    for tenant_idx in 0..tenants {
        let keys = DatasetSpec {
            n: keys_per_tenant,
            distribution: Distribution::Uniform { domain: 1 << 31 },
            duplicate_fraction: 0.1,
            seed: 42 + tenant_idx as u64,
        }
        .generate();
        let mut inc = IncrementalOpaq::new(config).unwrap();
        inc.add_run(keys).unwrap();
        catalog
            .publish(
                &TenantId::new(format!("tenant-{tenant_idx}")),
                &DatasetId::new("events"),
                inc.into_sketch().unwrap(),
            )
            .unwrap();
    }
    catalog
}

/// The gate: plan answers must equal the manual merge + direct query, with
/// full provenance, before anything is timed.
fn verify_plan_consistency(tenants: usize) -> (Arc<SketchCatalog>, PlanExecutor) {
    let catalog = catalog_with_tenants(tenants);
    let executor = PlanExecutor::new(Arc::clone(&catalog));

    let plan = QueryPlan::parse("fetch tenant-*/events | coalesce | quantile 0.5,0.99").unwrap();
    let response = executor.execute(&plan).unwrap();
    assert_eq!(
        response.sources.len(),
        tenants,
        "the glob must fan out over every tenant"
    );
    let sketches: Vec<_> = response
        .sources
        .iter()
        .map(|s| {
            catalog
                .snapshot(&s.tenant, &s.dataset)
                .expect("claimed source must exist")
                .sketch
        })
        .collect();
    let fused = merge_tree(&sketches).unwrap();
    assert_eq!(
        response.output,
        execute_on(&fused, &plan.extract).unwrap(),
        "plan answer must equal the offline merge + direct query"
    );
    assert_eq!(response.total_elements, fused.total_elements());

    let engine = QueryEngine::new(Arc::clone(&catalog));
    let (tenant, dataset) = (TenantId::new("tenant-0"), DatasetId::new("events"));
    let request = QueryRequest::Quantile { phi: 0.5 };
    let direct = engine.execute(&tenant, &dataset, &request).unwrap();
    let degenerate = executor
        .execute(&QueryPlan::single(tenant, dataset, request))
        .unwrap();
    assert_eq!(degenerate.output, direct.output);
    assert_eq!(degenerate.sources[0].version, direct.version);

    (catalog, executor)
}

fn bench_query_plan(c: &mut Criterion) {
    let fan_outs: &[usize] = if quick_mode() { &[4] } else { &[4, 16] };
    let max_tenants = *fan_outs.iter().max().unwrap();
    let (catalog, executor) = verify_plan_consistency(max_tenants);
    println!(
        "== query_plan consistency gate passed ({max_tenants} tenants, \
         plan == offline merge + direct query) =="
    );

    // Parse throughput: the hand-rolled pipeline grammar.
    let mut group = c.benchmark_group("plan_parse");
    for text in [
        "fetch acme/events | quantile 0.5",
        "fetch tenant-*/ev-?? | coalesce | quantile 0.25,0.5,0.75,0.99",
        "fetch */* | coalesce | profile 32",
    ] {
        group.bench_with_input(BenchmarkId::new("text", text), text, |b, text| {
            b.iter(|| QueryPlan::parse(black_box(text)).unwrap())
        });
    }
    group.finish();

    // The api_redesign overhead question: the degenerate one-target plan
    // against the engine path the GET routes used to call directly.
    let engine = QueryEngine::new(Arc::clone(&catalog));
    let (tenant, dataset) = (TenantId::new("tenant-0"), DatasetId::new("events"));
    let request = QueryRequest::Quantile { phi: 0.5 };
    let mut group = c.benchmark_group("single_target");
    group.bench_function("engine_execute", |b| {
        b.iter(|| {
            black_box(
                engine
                    .execute(black_box(&tenant), black_box(&dataset), black_box(&request))
                    .unwrap(),
            )
        })
    });
    let single = QueryPlan::single(tenant.clone(), dataset.clone(), request.clone());
    group.bench_function("degenerate_plan", |b| {
        b.iter(|| black_box(executor.execute(black_box(&single)).unwrap()))
    });
    group.finish();

    // Glob fan-out + merge-tree coalesce at two fan-out widths against the
    // same catalog: `tenant-?` resolves the single-digit tenants, `tenant-*`
    // all of them.  The measured fan-out is derived from a dry run, not
    // assumed.
    let mut group = c.benchmark_group("glob_coalesce");
    group.sample_size(20);
    for pattern in ["tenant-?/events", "tenant-*/events"] {
        let plan = QueryPlan::parse(&format!("fetch {pattern} | coalesce | quantile 0.5")).unwrap();
        let fan_out = executor.execute(&plan).unwrap().sources.len();
        println!("glob_coalesce: {pattern} fans out over {fan_out} tenants");
        group.bench_with_input(BenchmarkId::new("pattern", pattern), &plan, |b, plan| {
            b.iter(|| black_box(executor.execute(black_box(plan)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_plan);
criterion_main!(benches);
