//! Sequential vs. sharded ingestion wall-clock.
//!
//! Builds the same sketch four ways — the sequential [`OpaqEstimator`] and
//! [`ShardedOpaq`] with 2, 4 and 8 worker threads — over a multi-run
//! in-memory store, so `cargo bench --bench sharded_ingest` answers "what
//! does sharding buy on this machine?".  The sampling work (`O(m log s)`
//! multi-selection per run) dominates, so on a machine with ≥ 4 cores the
//! 4-thread variant should beat sequential clearly; on a single core the
//! numbers instead measure the (small) dispatch overhead.  Sketch equality
//! across all variants is asserted once up front, so the bench doubles as a
//! smoke test of the bit-identity invariant.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use opaq_core::{OpaqConfig, OpaqEstimator};
use opaq_datagen::DatasetSpec;
use opaq_parallel::ShardedOpaq;
use opaq_storage::MemRunStore;

const N: u64 = 2_000_000;
const RUN_LENGTH: u64 = 125_000; // 16 runs
const SAMPLE_SIZE: u64 = 2_000;

fn bench_sharded_ingest(c: &mut Criterion) {
    let data = DatasetSpec::paper_uniform(N, 41).generate();
    let store = MemRunStore::new(data, RUN_LENGTH);
    let config = OpaqConfig::builder()
        .run_length(RUN_LENGTH)
        .sample_size(SAMPLE_SIZE)
        .build()
        .unwrap();

    // The invariant the satellites pin down, asserted on the bench workload.
    let sequential = OpaqEstimator::new(config).build_sketch(&store).unwrap();
    for threads in [1usize, 2, 4, 8] {
        let sharded = ShardedOpaq::new(config, threads)
            .unwrap()
            .build_sketch(&store)
            .unwrap();
        assert_eq!(sharded, sequential, "threads {threads}");
    }

    let mut group = c.benchmark_group("sharded_ingest_2m_keys_16_runs");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(OpaqEstimator::new(config).build_sketch(&store).unwrap()))
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("sharded", threads),
            &threads,
            |b, &threads| {
                let sharded = ShardedOpaq::new(config, threads).unwrap();
                b.iter(|| black_box(sharded.build_sketch(&store).unwrap()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_ingest);
criterion_main!(benches);
