//! Serving-layer load benchmark: mixed read/refresh workloads over the
//! multi-tenant catalog.
//!
//! Two halves:
//!
//! 1. **Workload replay + report.**  Before any timing, the bench replays a
//!    full mixed workload (clients ≥ 4, several tenants, refreshes published
//!    mid-run, and an eviction-budget variant) through
//!    `opaq_serve::run_workload`, prints the per-tenant p50/p90/p99/p999
//!    latency tables and **asserts zero torn reads** — every response must
//!    equal the output of one complete published sketch version,
//!    byte-for-byte.  A catalog consistency regression fails `cargo bench`
//!    loudly before a single timing is taken.
//! 2. **Criterion timings.**  Per-request-type latency against a resident
//!    snapshot, and whole-workload replays at 4 and 8 client threads for a
//!    throughput trend.
//!
//! Set `OPAQ_BENCH_QUICK=1` (the per-PR CI smoke mode) to shrink the
//! datasets; the consistency assertions run at full strength either way.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use opaq_serve::{
    run_workload, DatasetId, QueryEngine, QueryRequest, SketchCatalog, TenantId, WorkloadSpec,
};
use std::sync::Arc;

fn quick_mode() -> bool {
    std::env::var_os("OPAQ_BENCH_QUICK").is_some()
}

/// The workload replayed for the report and the throughput timings.
fn spec(clients: usize, budget: Option<u64>) -> WorkloadSpec {
    let mut spec = if quick_mode() {
        WorkloadSpec::quick()
    } else {
        WorkloadSpec::default()
    };
    spec.tenants = spec.tenants.max(2);
    spec.clients = clients;
    spec.budget_sample_points = budget;
    spec
}

/// Replay one workload, print its latency report, and fail hard on any torn
/// read.  Returns the op count so callers can sanity-check scale.
fn replay_and_verify(label: &str, spec: &WorkloadSpec) -> u64 {
    let report = run_workload(spec).expect("workload must run cleanly");
    println!(
        "== serve_load workload: {label} ({} tenants, {} clients, {} refreshes) ==",
        spec.tenants, spec.clients, report.refreshes_published
    );
    println!("{}", report.render());
    assert_eq!(
        report.torn_reads, 0,
        "{label}: torn read — a served estimate matched no published sketch version"
    );
    assert_eq!(
        report.verified, report.ops,
        "{label}: every response must be verified against its claimed version"
    );
    assert!(
        report.refreshes_published > 0,
        "{label}: refreshes must land mid-workload for the check to mean anything"
    );
    report.ops
}

fn bench_serve_load(c: &mut Criterion) {
    // Consistency gate + the p50/p99 report the acceptance criterion asks
    // for: ≥ 4 concurrent clients, refreshes published mid-workload.
    replay_and_verify("4 clients, unbounded catalog", &spec(4, None));
    // Same workload under an eviction budget tight enough to force
    // spill/reload churn between tenants (each initial quick sketch is
    // (keys/run_length)·s sample points; allow roughly 1.5 sketches).
    let churn = {
        let s = spec(4, None);
        let one_sketch = (s.keys_per_tenant / s.run_length) * s.sample_size;
        spec(4, Some(one_sketch * 3 / 2))
    };
    replay_and_verify("4 clients, eviction budget", &churn);

    // Per-request-type latency against a resident snapshot.
    let base = spec(1, None);
    let catalog = Arc::new(SketchCatalog::unbounded());
    let (tenant, dataset) = (TenantId::new("bench"), DatasetId::new("events"));
    {
        let mut inc = opaq_core::IncrementalOpaq::new(
            opaq_core::OpaqConfig::builder()
                .run_length(base.run_length)
                .sample_size(base.sample_size)
                .build()
                .unwrap(),
        )
        .unwrap();
        inc.add_run(
            opaq_datagen::DatasetSpec {
                n: base.keys_per_tenant,
                distribution: opaq_datagen::Distribution::Uniform { domain: 1 << 31 },
                duplicate_fraction: 0.1,
                seed: 41,
            }
            .generate(),
        )
        .unwrap();
        catalog
            .publish(&tenant, &dataset, inc.into_sketch().unwrap())
            .unwrap();
    }
    let engine = QueryEngine::new(Arc::clone(&catalog));
    let mut group = c.benchmark_group("serve_query_latency");
    group.sample_size(20);
    for (name, request) in [
        ("quantile", QueryRequest::Quantile { phi: 0.5 }),
        ("rank", QueryRequest::Rank { key: 1 << 30 }),
        (
            "batch3",
            QueryRequest::QuantileBatch {
                phis: vec![0.1, 0.5, 0.9],
            },
        ),
        ("profile16", QueryRequest::Profile { count: 16 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(engine.execute(&tenant, &dataset, &request).unwrap()))
        });
    }
    group.finish();

    // Whole-workload throughput trend over client counts.
    let mut group = c.benchmark_group("serve_mixed_workload");
    group.sample_size(10);
    for clients in [4usize, 8] {
        let spec = spec(clients, None);
        group.bench_with_input(BenchmarkId::new("clients", clients), &spec, |b, spec| {
            b.iter(|| black_box(run_workload(spec).unwrap().ops))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serve_load);
criterion_main!(benches);
