//! HTTP front-end load benchmark: the serving workload replayed over real
//! loopback TCP through `opaq-net`.
//!
//! Mirrors `serve_load.rs`, one layer out: before any timing, a full mixed
//! workload (clients ≥ 4, refreshes mid-run, TTL probe tenant) is replayed
//! through `opaq_net::run_http_workload`, which re-renders every response
//! from the registered sketch of its claimed `x-opaq-version` and compares
//! **byte-for-byte** — a torn read, an HTTP error, or a missing TTL
//! expiry→refresh cycle fails `cargo bench` before a single timing.  An
//! open-loop leg then replays the workload at a fixed offered rate under a
//! declared SLO (latency from scheduled send times, 503s as sheds) and
//! fails on any breach.  Finally criterion times whole-workload throughput
//! at two client counts, giving the over-the-wire cost next to
//! `serve_load`'s in-process numbers.
//!
//! Set `OPAQ_BENCH_QUICK=1` (per-PR CI smoke) to shrink the datasets; the
//! consistency assertions run at full strength either way.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use opaq_metrics::SloThresholds;
use opaq_net::{run_http_workload, HttpWorkloadSpec};
use std::time::Duration;

fn quick_mode() -> bool {
    std::env::var_os("OPAQ_BENCH_QUICK").is_some()
}

fn spec(clients: usize, ttl: Option<Duration>) -> HttpWorkloadSpec {
    let mut spec = if quick_mode() {
        HttpWorkloadSpec::quick()
    } else {
        HttpWorkloadSpec::default()
    };
    spec.spec.tenants = spec.spec.tenants.max(2);
    spec.spec.clients = clients;
    spec.ttl = ttl;
    spec
}

fn replay_and_verify(label: &str, spec: &HttpWorkloadSpec) -> u64 {
    let report = run_http_workload(spec).expect("http workload must run cleanly");
    println!(
        "== http_serve workload: {label} ({} tenants, {} clients, {} refreshes) ==",
        spec.spec.tenants, spec.spec.clients, report.refreshes_published
    );
    println!("{}", report.render());
    assert_eq!(
        report.torn_reads, 0,
        "{label}: torn read — a wire response matched no published sketch version byte-for-byte"
    );
    assert_eq!(report.http_errors, 0, "{label}: HTTP error status observed");
    assert_eq!(report.verified, report.ops);
    assert_eq!(
        report.plan_verified, report.plan_ops,
        "{label}: a /v1/query plan failed its offline byte replay"
    );
    assert!(
        report.plan_ops > 0,
        "{label}: the workload must exercise the plan route"
    );
    assert!(
        report.refreshes_published > 0,
        "{label}: refreshes must land mid-workload"
    );
    if spec.ttl.is_some() {
        assert!(
            report.ttl_refreshes_observed >= 1,
            "{label}: the TTL probe must observe a full expiry→refresh→publish cycle"
        );
    }
    report.ops
}

fn bench_http_serve(c: &mut Criterion) {
    // Consistency gate: byte-for-byte over the wire, with the TTL probe on.
    replay_and_verify(
        "4 clients + ttl probe",
        &spec(4, Some(Duration::from_millis(100))),
    );

    // Open-loop leg: the same workload under a fixed offered rate with a
    // declared SLO.  Latency is measured from each op's *scheduled* send
    // time (coordinated-omission-safe), 503s count as sheds, and any
    // breach of the declared objectives fails the bench before timing.
    {
        let mut open = spec(4, None);
        open.spec.refresh_rounds = 1;
        open.target_qps = Some(if quick_mode() { 2_000.0 } else { 5_000.0 });
        open.slo = SloThresholds {
            p99: Some(Duration::from_secs(5)),
            max_error_rate: Some(0.0),
            max_shed_rate: Some(0.0),
            ..Default::default()
        };
        let report = run_http_workload(&open).expect("open-loop workload must run cleanly");
        println!(
            "== http_serve workload: open loop @ {:.0} qps ==",
            open.target_qps.unwrap()
        );
        println!("{}", report.render());
        assert_eq!(report.torn_reads, 0, "open loop: torn read over the wire");
        assert_eq!(
            report.slo.breaches(),
            0,
            "open loop: declared SLO breached\n{}",
            report.render()
        );
    }

    // Whole-workload throughput trend over client counts (TTL probe off so
    // the timing loop is not gated on the expiry grace window).
    let mut group = c.benchmark_group("http_mixed_workload");
    group.sample_size(10);
    for clients in [4usize, 8] {
        let spec = spec(clients, None);
        group.bench_with_input(BenchmarkId::new("clients", clients), &spec, |b, spec| {
            b.iter(|| black_box(run_http_workload(spec).unwrap().ops))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_http_serve);
criterion_main!(benches);
