//! Microbenchmarks for the selection kernels and the allocation-free
//! run-ingest hot path (PR 3).
//!
//! Three questions, answered on 1M-key u64 runs (the paper's experiment
//! scale):
//!
//! 1. **Partition kernel** — scalar Dutch-national-flag vs. the branchless
//!    BlockQuicksort-style three-way partition, on identical data and pivot.
//! 2. **Multi-selection** — `multiselect` of `s = 1000` regular ranks under
//!    the scalar `Quickselect` strategy vs. the `BlockQuickselect` strategy.
//! 3. **End-to-end `sample_run`** — the seed path (fresh buffer per run +
//!    scalar kernel) vs. the new hot path (recycled buffer + `RunSampler`
//!    rank cache + block kernel), which is what the acceptance criterion
//!    ("≥ 1.5× on 1M-key u64 runs") measures.
//!
//! Set `OPAQ_BENCH_QUICK=1` to shrink the input to 20k keys: that mode is
//! run per-PR in CI as a smoke job, where the *correctness* cross-checks at
//! the top of each benchmark (block kernel vs. scalar oracle) fail loudly if
//! a kernel regresses; timings at that size are informational only.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use opaq_core::{sample_run, RunSampler};
use opaq_datagen::{KeyGenerator, UniformGenerator};
use opaq_select::partition::{partition_three_way, partition_three_way_block};
use opaq_select::{multiselect_with, regular_sample_ranks, SelectionStrategy};

fn quick_mode() -> bool {
    std::env::var_os("OPAQ_BENCH_QUICK").is_some()
}

fn run_len() -> usize {
    if quick_mode() {
        20_000
    } else {
        1_000_000
    }
}

fn sample_size() -> u64 {
    if quick_mode() {
        200
    } else {
        1000
    }
}

fn keys(seed: u64, n: usize) -> Vec<u64> {
    UniformGenerator::new(seed, u32::MAX as u64).generate(n)
}

fn bench_partition_kernels(c: &mut Criterion) {
    let n = run_len();
    let data = keys(1, n);
    let pivot = n / 2;

    // Correctness cross-check before timing anything: the block kernel must
    // return the scalar oracle's equal band on this exact input.
    {
        let mut scalar = data.clone();
        let ps = partition_three_way(&mut scalar, pivot);
        let mut block = data.clone();
        let pb = partition_three_way_block(&mut block, pivot);
        assert_eq!(ps, pb, "block kernel diverged from the scalar oracle");
    }

    let mut group = c.benchmark_group(format!("partition_3way_{n}"));
    group.sample_size(15);
    group.bench_function("scalar_dnf", |b| {
        b.iter(|| {
            let mut work = data.clone();
            black_box(partition_three_way(&mut work, pivot))
        })
    });
    group.bench_function("block_branchless", |b| {
        b.iter(|| {
            let mut work = data.clone();
            black_box(partition_three_way_block(&mut work, pivot))
        })
    });
    group.finish();
}

fn bench_multiselect_strategies(c: &mut Criterion) {
    let n = run_len();
    let s = sample_size() as usize;
    let data = keys(2, n);
    let ranks = regular_sample_ranks(n, s);

    // Every strategy must select identical values (the sketch-identity
    // invariant); check it on the bench input before timing.
    let reference = {
        let mut work = data.clone();
        multiselect_with(&mut work, &ranks, SelectionStrategy::Quickselect)
    };
    for strategy in SelectionStrategy::ALL {
        let mut work = data.clone();
        assert_eq!(
            multiselect_with(&mut work, &ranks, strategy),
            reference,
            "{strategy:?} selected different values"
        );
    }

    let mut group = c.benchmark_group(format!("multiselect_{s}_of_{n}"));
    group.sample_size(15);
    for strategy in [
        SelectionStrategy::Quickselect,
        SelectionStrategy::BlockQuickselect,
        SelectionStrategy::FloydRivest,
    ] {
        group.bench_with_input(
            BenchmarkId::new("strategy", format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let mut work = data.clone();
                    black_box(multiselect_with(&mut work, &ranks, strategy))
                })
            },
        );
    }
    group.finish();
}

fn bench_sample_run_pipeline(c: &mut Criterion) {
    let n = run_len();
    let s = sample_size();
    let data = keys(3, n);

    // The two paths must produce the identical RunSample.
    {
        let mut seed_buf = data.clone();
        let seed = sample_run(&mut seed_buf, s, SelectionStrategy::Quickselect).unwrap();
        let mut sampler = RunSampler::new(s, SelectionStrategy::BlockQuickselect).unwrap();
        let mut reuse_buf = data.clone();
        let block = sampler.sample(&mut reuse_buf).unwrap();
        assert_eq!(seed, block, "hot path diverged from the seed path");
    }

    let mut group = c.benchmark_group(format!("sample_run_{n}_s{s}"));
    group.sample_size(15);

    // Seed path: a fresh m-element buffer every run (what `read_run`
    // allocated), scalar partition kernel, ranks recomputed per call.
    group.bench_function("seed_scalar_alloc", |b| {
        b.iter(|| {
            let mut run = data.clone();
            black_box(sample_run(&mut run, s, SelectionStrategy::Quickselect).unwrap())
        })
    });

    // Hot path: one recycled buffer refilled in place (what `read_run_into`
    // does), block kernel, rank table cached across runs.
    group.bench_function("block_buffer_reuse", |b| {
        let mut sampler = RunSampler::new(s, SelectionStrategy::BlockQuickselect).unwrap();
        let mut run_buf: Vec<u64> = Vec::with_capacity(n);
        b.iter(|| {
            run_buf.clear();
            run_buf.extend_from_slice(&data);
            black_box(sampler.sample(&mut run_buf).unwrap())
        })
    });

    // Ablation: block kernel but fresh allocation per run, to separate the
    // kernel win from the allocator win.
    group.bench_function("block_alloc", |b| {
        b.iter(|| {
            let mut run = data.clone();
            black_box(sample_run(&mut run, s, SelectionStrategy::BlockQuickselect).unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_partition_kernels,
    bench_multiselect_strategies,
    bench_sample_run_pipeline
);
criterion_main!(benches);
