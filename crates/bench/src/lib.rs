//! Shared harness code for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation has a dedicated binary in
//! `src/bin/` (see DESIGN.md §4 for the index).  The binaries share the
//! workload construction, error-rate computation and output formatting that
//! lives here.
//!
//! ## Scaling
//!
//! The paper's experiments use 1–10 million keys sequentially and up to
//! 32 million in the parallel runs.  Full-size runs are perfectly feasible
//! but take minutes; to keep `cargo run` and CI turnarounds short every
//! binary multiplies the paper's sizes by a scale factor, default **0.1**,
//! controllable with the `OPAQ_SCALE` environment variable (use
//! `OPAQ_SCALE=1.0` to reproduce the paper's exact sizes).  Error-rate
//! results are unaffected by the scale because both the sample size `s` and
//! the error metrics are relative quantities; EXPERIMENTS.md records runs at
//! full scale.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use opaq_core::{OpaqConfig, OpaqEstimator, QuantileEstimate};
use opaq_datagen::DatasetSpec;
use opaq_metrics::{compute_error_rates, GroundTruth, QuantileBoundsView, RelativeErrorRates};
use opaq_storage::MemRunStore;

/// The scale factor applied to the paper's dataset sizes (`OPAQ_SCALE`,
/// default 0.1, clamped to `[0.001, 10.0]`).
pub fn scale() -> f64 {
    std::env::var("OPAQ_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.1)
        .clamp(0.001, 10.0)
}

/// Scale a paper dataset size by [`scale`], keeping at least 10 000 keys so
/// the run/sample structure stays meaningful.
pub fn scaled(n_paper: u64) -> u64 {
    ((n_paper as f64 * scale()) as u64).max(10_000)
}

/// The number of dectiles reported in the paper's accuracy tables.
pub const DECTILES: u64 = 10;

/// The paper's run length for the sequential experiments: data sets are read
/// in runs of 100k elements (scaled together with the data).
pub fn paper_run_length(n: u64) -> u64 {
    (n / 10).max(1000)
}

/// Outcome of one OPAQ accuracy run.
#[derive(Debug, Clone)]
pub struct AccuracyRun {
    /// The error rates against ground truth.
    pub rates: RelativeErrorRates,
    /// The raw estimates (one per dectile).
    pub estimates: Vec<QuantileEstimate<u64>>,
}

/// Generate `spec`, run sequential OPAQ with run length `m` and sample size
/// `s`, and compute the three error rates over the dectiles.
pub fn run_sequential_accuracy(spec: &DatasetSpec, m: u64, s: u64) -> AccuracyRun {
    let data = spec.generate();
    let store = MemRunStore::new(data.clone(), m);
    let config = OpaqConfig::builder()
        .run_length(m)
        .sample_size(s.min(m))
        .build()
        .expect("valid experiment configuration");
    let sketch = OpaqEstimator::new(config)
        .build_sketch(&store)
        .expect("sample phase succeeds");
    let estimates = sketch
        .estimate_q_quantiles(DECTILES)
        .expect("quantile phase succeeds");
    let truth = GroundTruth::new(&data);
    let bounds: Vec<QuantileBoundsView> = estimates
        .iter()
        .map(|e| QuantileBoundsView {
            phi: e.phi,
            lower: e.lower,
            upper: e.upper,
        })
        .collect();
    let rates = compute_error_rates(&truth, &bounds);
    AccuracyRun { rates, estimates }
}

/// Compute error rates for an arbitrary set of per-dectile bounds against a
/// dataset (used for the parallel and baseline experiments).
pub fn error_rates_for_bounds(data: &[u64], bounds: &[QuantileBoundsView]) -> RelativeErrorRates {
    let truth = GroundTruth::new(data);
    compute_error_rates(&truth, bounds)
}

/// The dectile labels used by the paper's tables ("10%", …, "90%").
pub fn dectile_labels() -> Vec<String> {
    (1..DECTILES).map(|i| format!("{}0%", i)).collect()
}

/// Convert quantile estimates into the metrics crate's view type.
pub fn to_bounds_view(estimates: &[QuantileEstimate<u64>]) -> Vec<QuantileBoundsView> {
    estimates
        .iter()
        .map(|e| QuantileBoundsView {
            phi: e.phi,
            lower: e.lower,
            upper: e.upper,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use opaq_datagen::DatasetSpec;

    #[test]
    fn scale_is_clamped() {
        // Whatever the environment says, the value must be inside the clamp.
        let s = scale();
        assert!((0.001..=10.0).contains(&s));
        assert!(scaled(1_000_000) >= 10_000);
    }

    #[test]
    fn sequential_accuracy_run_produces_nine_dectiles() {
        let spec = DatasetSpec::paper_uniform(20_000, 7);
        let run = run_sequential_accuracy(&spec, 2_000, 200);
        assert_eq!(run.estimates.len(), 9);
        assert_eq!(run.rates.rer_a_per_quantile.len(), 9);
        // Theoretical cap: RER_A <= 2/s*100 = 1.0, RER_N <= q/s*100 = 5.0.
        assert!(run.rates.rer_a_max() <= 1.0 + 1e-9);
        assert!(run.rates.rer_n <= 5.0 + 1e-9);
    }

    #[test]
    fn dectile_labels_match_paper() {
        let labels = dectile_labels();
        assert_eq!(labels.len(), 9);
        assert_eq!(labels[0], "10%");
        assert_eq!(labels[8], "90%");
    }

    #[test]
    fn paper_run_length_is_a_tenth() {
        assert_eq!(paper_run_length(1_000_000), 100_000);
        assert_eq!(paper_run_length(5_000), 1000);
    }
}
