//! Table 9: RER_A of the parallel algorithm (8 processors) for total dataset
//! sizes from 0.5 M to 32 M keys, uniform distribution.
//!
//! Run with `cargo run --release -p opaq-bench --bin table9`.

use opaq_bench::{dectile_labels, error_rates_for_bounds, scaled, to_bounds_view, DECTILES};
use opaq_core::OpaqConfig;
use opaq_datagen::DatasetSpec;
use opaq_metrics::{fmt2, TextTable};
use opaq_parallel::{block_partition, MergeAlgorithm, ParallelOpaq};

fn main() {
    let p = 8usize;
    let paper_sizes: [u64; 7] = [
        500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000, 16_000_000, 32_000_000,
    ];
    let sizes: Vec<u64> = paper_sizes.iter().map(|&n| scaled(n)).collect();
    // The paper uses 1024 samples per run for the parallel experiments.
    let s = 1024u64;

    let mut columns: Vec<Vec<f64>> = Vec::new();
    for &n in &sizes {
        let spec = DatasetSpec::paper_uniform(n, 11);
        let data = spec.generate();
        let m = (n / (p as u64 * 4)).max(s); // 4 runs per processor
        let config = OpaqConfig::builder()
            .run_length(m)
            .sample_size(s.min(m))
            .build()
            .unwrap();
        let popaq = ParallelOpaq::new(config, p).with_merge(MergeAlgorithm::Sample);
        let report = popaq.run_on_partitions(block_partition(&data, p)).unwrap();
        let estimates = report.sketch.estimate_q_quantiles(DECTILES).unwrap();
        columns.push(error_rates_for_bounds(&data, &to_bounds_view(&estimates)).rer_a_per_quantile);
    }

    let mut header = vec!["dectile".to_string()];
    header.extend(sizes.iter().map(|n| format!("{:.1}M", *n as f64 / 1e6)));
    let mut table = TextTable::new(format!(
        "Table 9: RER_A (%) of parallel OPAQ, p = {p}, s = {s}, uniform distribution"
    ))
    .header(header);
    for (d, label) in dectile_labels().into_iter().enumerate() {
        let mut row = vec![label];
        row.extend(columns.iter().map(|c| fmt2(c[d])));
        table.row(row);
    }
    print!("{}", table.render());
    println!("expectation: ~0.09-0.10 everywhere, independent of the total data size");
}
