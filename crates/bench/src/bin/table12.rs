//! Table 12: fraction of the execution time spent in each phase (I/O,
//! sampling, local merge, global merge) for 4 M elements per processor and
//! 1 – 16 processors (modelled times).
//!
//! Run with `cargo run --release -p opaq-bench --bin table12`.

use opaq_bench::scaled;
use opaq_core::OpaqConfig;
use opaq_datagen::DatasetSpec;
use opaq_metrics::TextTable;
use opaq_parallel::{block_partition, MergeAlgorithm, ParallelOpaq};

fn main() {
    let per = scaled(4_000_000);
    let processors = [1usize, 2, 4, 8, 16];
    let s = 1024u64;

    let mut rows: Vec<Vec<String>> = vec![
        vec!["I/O".to_string()],
        vec!["Sampling".to_string()],
        vec!["Local Merge".to_string()],
        vec!["Global Merge".to_string()],
    ];
    for &p in &processors {
        let n = per * p as u64;
        let data = DatasetSpec::paper_uniform(n, 5).generate();
        let m = (per / 4).max(s);
        let config = OpaqConfig::builder()
            .run_length(m)
            .sample_size(s.min(m))
            .build()
            .unwrap();
        let popaq = ParallelOpaq::new(config, p).with_merge(MergeAlgorithm::Sample);
        let report = popaq.run_on_partitions(block_partition(&data, p)).unwrap();
        let (io, sampling, local, global) = report.modelled.fractions();
        rows[0].push(format!("{io:.3}"));
        rows[1].push(format!("{sampling:.3}"));
        rows[2].push(format!("{local:.3}"));
        rows[3].push(format!("{global:.3}"));
    }

    let mut table = TextTable::new(format!(
        "Table 12: phase fractions of total time, {per} elements per processor (modelled)"
    ))
    .header(["phase", "p=1", "p=2", "p=4", "p=8", "p=16"]);
    for row in rows {
        table.row(row);
    }
    print!("{}", table.render());
    println!("expectation: I/O + sampling dominate (> 83% in the paper) and are independent of p; merges are small");
}
