//! Table 8: analytical time requirement of the parallel algorithm for the
//! two global-merge options (bitonic merge vs sample merge) under the
//! two-level cost model.
//!
//! Run with `cargo run --release -p opaq-bench --bin table8`.

use opaq_metrics::TextTable;
use opaq_parallel::CostModel;

fn main() {
    let cost = CostModel::sp2();
    let processors = [2u64, 4, 8, 16];
    let list_sizes = [1_000u64, 10_000, 100_000, 1_000_000];

    let mut table = TextTable::new(
        "Table 8: modelled global-merge time (ms) under the two-level model (bitonic | sample)",
    )
    .header([
        "p", "x=1k B", "x=1k S", "x=10k B", "x=10k S", "x=100k B", "x=100k S", "x=1M B", "x=1M S",
    ]);
    for &p in &processors {
        let mut row = vec![p.to_string()];
        for &x in &list_sizes {
            let b = cost.bitonic_merge_cost(p, x).as_secs_f64() * 1e3;
            let s = cost.sample_merge_cost(p, x, p * p).as_secs_f64() * 1e3;
            row.push(format!("{b:.3}"));
            row.push(format!("{s:.3}"));
        }
        table.row(row);
    }
    print!("{}", table.render());
    println!(
        "expectation: bitonic wins for small x / small p, sample merge wins for large x / large p"
    );
}
