//! Table 4: RER_L and RER_N of OPAQ for different sample sizes
//! (s = 250, 500, 1000) on a 1 M-key dataset, uniform and Zipf(0.86).
//!
//! Run with `cargo run --release -p opaq-bench --bin table4`.

use opaq_bench::{paper_run_length, run_sequential_accuracy, scaled};
use opaq_datagen::DatasetSpec;
use opaq_metrics::{fmt2, TextTable};

fn main() {
    let n = scaled(1_000_000);
    let m = paper_run_length(n);
    let sample_sizes = [250u64, 500, 1000];
    let specs = [
        DatasetSpec::paper_uniform(n, 42),
        DatasetSpec::paper_zipf(n, 43),
    ];

    let mut rer_l_row: Vec<String> = vec!["RER_L".to_string()];
    let mut rer_n_row: Vec<String> = vec!["RER_N".to_string()];
    for spec in &specs {
        for &s in &sample_sizes {
            let run = run_sequential_accuracy(spec, m, s);
            rer_l_row.push(fmt2(run.rates.rer_l));
            rer_n_row.push(fmt2(run.rates.rer_n));
        }
    }

    let mut table = TextTable::new(format!(
        "Table 4: RER_L / RER_N (%) by sample size, n = {n} (uniform s=250/500/1000, then zipf)"
    ))
    .header([
        "metric", "u s=250", "u s=500", "u s=1000", "z s=250", "z s=500", "z s=1000",
    ]);
    table.row(rer_l_row);
    table.row(rer_n_row);
    print!("{}", table.render());
    let bound = |s: f64| 10.0 / s * 100.0; // q = 10 dectiles
    println!(
        "paper bound: RER_L, RER_N <= q/s*100 = {:.2} / {:.2} / {:.2}",
        bound(250.0),
        bound(500.0),
        bound(1000.0)
    );
}
