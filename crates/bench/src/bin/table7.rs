//! Table 7: RER_A comparison of OPAQ against the Agrawal–Swami one-pass
//! algorithm [AS95] and random sampling, under an equal memory budget of
//! 3000 retained points, on a 1 M-key dataset (uniform and Zipf 0.86).
//!
//! Run with `cargo run --release -p opaq-bench --bin table7`.

use opaq_baselines::{AdaptiveIntervalEstimator, ReservoirSampler, StreamingEstimator};
use opaq_bench::{
    dectile_labels, error_rates_for_bounds, paper_run_length, run_sequential_accuracy, scaled,
    to_bounds_view, DECTILES,
};
use opaq_datagen::DatasetSpec;
use opaq_metrics::{fmt2, QuantileBoundsView, TextTable};

/// Memory budget in retained points, shared by all three algorithms.  For
/// OPAQ this is the merged sample list (r·s = 3000 with the paper's r = 10).
const MEMORY_POINTS: usize = 3000;

fn baseline_rates(data: &[u64], estimator: &mut dyn StreamingEstimator) -> Vec<f64> {
    estimator.observe_all(data);
    let bounds: Vec<QuantileBoundsView> = (1..DECTILES)
        .map(|i| {
            let phi = i as f64 / DECTILES as f64;
            let v = estimator.estimate(phi).expect("baseline estimate");
            QuantileBoundsView {
                phi,
                lower: v,
                upper: v,
            }
        })
        .collect();
    error_rates_for_bounds(data, &bounds).rer_a_per_quantile
}

fn main() {
    let n = scaled(1_000_000);
    let m = paper_run_length(n);
    // r = n/m = 10 runs; r*s = MEMORY_POINTS  =>  s = MEMORY_POINTS / 10.
    let s = (MEMORY_POINTS as u64 * m / n).max(2);

    let specs = [
        DatasetSpec::paper_uniform(n, 42),
        DatasetSpec::paper_zipf(n, 43),
    ];
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for spec in &specs {
        let data = spec.generate();

        // OPAQ with r*s = 3000 sample points.
        let opaq = run_sequential_accuracy(spec, m, s);
        let opaq_bounds = to_bounds_view(&opaq.estimates);
        columns.push(error_rates_for_bounds(&data, &opaq_bounds).rer_a_per_quantile);

        // AS95 adaptive intervals with ~3000 counters.
        let mut as95 = AdaptiveIntervalEstimator::new(MEMORY_POINTS - 2);
        columns.push(baseline_rates(&data, &mut as95));

        // Random sampling with 3000 retained keys.
        let mut sampler = ReservoirSampler::new(MEMORY_POINTS, 7);
        columns.push(baseline_rates(&data, &mut sampler));
    }

    let mut table = TextTable::new(format!(
        "Table 7: RER_A (%) under an equal memory budget of {MEMORY_POINTS} points, n = {n} (uniform | zipf 0.86)"
    ))
    .header([
        "dectile", "u OPAQ", "u AS95", "u sample", "z OPAQ", "z AS95", "z sample",
    ]);
    for (d, label) in dectile_labels().into_iter().enumerate() {
        table.row([
            label,
            fmt2(columns[0][d]),
            fmt2(columns[1][d]),
            fmt2(columns[2][d]),
            fmt2(columns[3][d]),
            fmt2(columns[4][d]),
            fmt2(columns[5][d]),
        ]);
    }
    print!("{}", table.render());
    println!("expectation: OPAQ is comparable or better, and it is the only one with a deterministic bound (2/s*100 = {:.2}%)", 200.0 / s as f64);
}
