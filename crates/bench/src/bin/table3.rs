//! Table 3: RER_A of OPAQ for different sample sizes (s = 250, 500, 1000),
//! dectiles of a 1 M-key dataset, uniform and Zipf(0.86) distributions.
//!
//! Run with `cargo run --release -p opaq-bench --bin table3` (set
//! `OPAQ_SCALE=1.0` for the paper's exact sizes).

use opaq_bench::{dectile_labels, paper_run_length, run_sequential_accuracy, scaled};
use opaq_datagen::DatasetSpec;
use opaq_metrics::{fmt2, TextTable};

fn main() {
    let n = scaled(1_000_000);
    let m = paper_run_length(n);
    let sample_sizes = [250u64, 500, 1000];

    let mut per_dist_results: Vec<Vec<Vec<f64>>> = Vec::new(); // [dist][s][dectile]
    let specs = [
        DatasetSpec::paper_uniform(n, 42),
        DatasetSpec::paper_zipf(n, 43),
    ];
    for spec in &specs {
        let mut per_s = Vec::new();
        for &s in &sample_sizes {
            let run = run_sequential_accuracy(spec, m, s);
            per_s.push(run.rates.rer_a_per_quantile.clone());
        }
        per_dist_results.push(per_s);
    }

    let mut table = TextTable::new(format!(
        "Table 3: RER_A (%) by sample size, n = {n}, m = {m} (uniform | zipf 0.86)"
    ))
    .header([
        "dectile", "u s=250", "u s=500", "u s=1000", "z s=250", "z s=500", "z s=1000",
    ]);
    for (d, label) in dectile_labels().into_iter().enumerate() {
        table.row([
            label,
            fmt2(per_dist_results[0][0][d]),
            fmt2(per_dist_results[0][1][d]),
            fmt2(per_dist_results[0][2][d]),
            fmt2(per_dist_results[1][0][d]),
            fmt2(per_dist_results[1][1][d]),
            fmt2(per_dist_results[1][2][d]),
        ]);
    }
    print!("{}", table.render());
    println!(
        "paper bound: RER_A <= 2/s*100 = {:.2} / {:.2} / {:.2}",
        200.0 / 250.0,
        200.0 / 500.0,
        200.0 / 1000.0
    );
}
