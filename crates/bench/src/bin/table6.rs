//! Table 6: RER_L and RER_N of OPAQ for different dataset sizes
//! (1 M, 5 M, 10 M keys) with s = 1000, uniform and Zipf(0.86).
//!
//! Run with `cargo run --release -p opaq-bench --bin table6`.

use opaq_bench::{paper_run_length, run_sequential_accuracy, scaled};
use opaq_datagen::DatasetSpec;
use opaq_metrics::{fmt2, TextTable};

fn main() {
    let sizes = [scaled(1_000_000), scaled(5_000_000), scaled(10_000_000)];
    let s = 1000u64;

    let mut rer_l_row: Vec<String> = vec!["RER_L".to_string()];
    let mut rer_n_row: Vec<String> = vec!["RER_N".to_string()];
    for make_spec in [
        DatasetSpec::paper_uniform as fn(u64, u64) -> DatasetSpec,
        DatasetSpec::paper_zipf,
    ] {
        for &n in &sizes {
            let run = run_sequential_accuracy(&make_spec(n, 42), paper_run_length(n), s);
            rer_l_row.push(fmt2(run.rates.rer_l));
            rer_n_row.push(fmt2(run.rates.rer_n));
        }
    }

    let mut table = TextTable::new(format!(
        "Table 6: RER_L / RER_N (%) by dataset size (s = {s}), sizes {} / {} / {}",
        sizes[0], sizes[1], sizes[2]
    ))
    .header(["metric", "u 1M", "u 5M", "u 10M", "z 1M", "z 5M", "z 10M"]);
    table.row(rer_l_row);
    table.row(rer_n_row);
    print!("{}", table.render());
    println!(
        "expectation: both stay around 0.5-0.6% as in the paper, independent of n and distribution"
    );
}
