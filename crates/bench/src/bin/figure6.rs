//! Figure 6: speed-up of parallel OPAQ for a fixed total of 4 M elements as
//! the processor count grows from 1 to 16.
//!
//! Run with `cargo run --release -p opaq-bench --bin figure6`.

use opaq_bench::scaled;
use opaq_core::OpaqConfig;
use opaq_datagen::DatasetSpec;
use opaq_metrics::TextTable;
use opaq_parallel::{block_partition, MergeAlgorithm, ParallelOpaq, ScalingReport};

fn main() {
    let n = scaled(4_000_000);
    let processors = [1usize, 2, 4, 8, 16];
    let s = 1024u64;
    let data = DatasetSpec::paper_uniform(n, 5).generate();

    let mut scaling = ScalingReport::new();
    let mut table = TextTable::new(format!(
        "Figure 6: speed-up — modelled total time for a fixed total of {n} elements"
    ))
    .header(["p", "total time (s)", "speed-up", "efficiency"]);

    for &p in &processors {
        let per = n / p as u64;
        let m = (per / 4).max(s.min(per));
        let config = OpaqConfig::builder()
            .run_length(m)
            .sample_size(s.min(m))
            .build()
            .unwrap();
        let popaq = ParallelOpaq::new(config, p).with_merge(MergeAlgorithm::Sample);
        let report = popaq.run_on_partitions(block_partition(&data, p)).unwrap();
        scaling.push(p, n, report.modelled.total());
    }
    let speedups = scaling.speedups();
    let efficiencies = scaling.efficiencies();
    for (i, &p) in processors.iter().enumerate() {
        table.row([
            p.to_string(),
            format!("{:.2}", scaling.points[i].time.as_secs_f64()),
            format!("{:.2}", speedups[i]),
            format!("{:.2}", efficiencies[i]),
        ]);
    }
    print!("{}", table.render());
    println!("expectation: near-linear speed-up (paper reports close to ideal up to 8 processors)");
}
