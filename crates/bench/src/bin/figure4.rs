//! Figure 4: scale-up of parallel OPAQ — total (modelled) execution time as
//! the number of processors grows with a fixed number of elements per
//! processor (0.5 M, 1 M, 2 M, 4 M).  A flat line is perfect scale-up.
//!
//! Run with `cargo run --release -p opaq-bench --bin figure4`.

use opaq_bench::scaled;
use opaq_core::OpaqConfig;
use opaq_datagen::DatasetSpec;
use opaq_metrics::TextTable;
use opaq_parallel::{block_partition, MergeAlgorithm, ParallelOpaq, ScalingReport};

fn main() {
    let per_proc_paper: [u64; 4] = [500_000, 1_000_000, 2_000_000, 4_000_000];
    let processors = [1usize, 2, 4, 8, 16];
    let s = 1024u64;

    let mut table =
        TextTable::new("Figure 4: scale-up — modelled total time (s) for fixed per-processor size")
            .header(["per-proc", "p=1", "p=2", "p=4", "p=8", "p=16", "scaleup@16"]);

    for &per_paper in &per_proc_paper {
        let per = scaled(per_paper);
        let mut report_row = vec![format!("{:.1}M", per_paper as f64 / 1e6)];
        let mut scaling = ScalingReport::new();
        for &p in &processors {
            let n = per * p as u64;
            let data = DatasetSpec::paper_uniform(n, 5).generate();
            let m = (per / 4).max(s);
            let config = OpaqConfig::builder()
                .run_length(m)
                .sample_size(s.min(m))
                .build()
                .unwrap();
            let popaq = ParallelOpaq::new(config, p).with_merge(MergeAlgorithm::Sample);
            let report = popaq.run_on_partitions(block_partition(&data, p)).unwrap();
            let total = report.modelled.total();
            scaling.push(p, n, total);
            report_row.push(format!("{:.2}", total.as_secs_f64()));
        }
        let scaleups = scaling.scaleups();
        report_row.push(format!("{:.2}", scaleups.last().copied().unwrap_or(0.0)));
        table.row(report_row);
    }
    print!("{}", table.render());
    println!("expectation: total time is nearly flat in p (scale-up close to 1.0), as in the paper's Figure 4");
}
