//! Ablation (§4 extension): incremental maintenance.
//!
//! New data arrives in batches; the incremental estimator only samples the
//! new runs and merges the sample lists.  The table tracks the measured
//! RER_N after each batch and compares it against a from-scratch rebuild —
//! the two must agree because merging sample lists is exactly what the batch
//! algorithm does.
//!
//! Run with `cargo run --release -p opaq-bench --bin ablation_incremental`.

use opaq_bench::{error_rates_for_bounds, scaled, to_bounds_view, DECTILES};
use opaq_core::{IncrementalOpaq, OpaqConfig, OpaqEstimator};
use opaq_datagen::DatasetSpec;
use opaq_metrics::{fmt2, TextTable};
use opaq_storage::MemRunStore;

fn main() {
    let batch = scaled(250_000);
    let batches = 6usize;
    let m = (batch / 4).max(1000);
    let s = 500u64;
    let config = OpaqConfig::builder()
        .run_length(m)
        .sample_size(s.min(m))
        .build()
        .unwrap();

    let mut incremental = IncrementalOpaq::<u64>::new(config).unwrap();
    let mut all_data: Vec<u64> = Vec::new();

    let mut table = TextTable::new(format!(
        "Ablation: incremental maintenance, {batches} batches of {batch} keys (s = {s})"
    ))
    .header([
        "batch",
        "total n",
        "RER_N incremental",
        "RER_N rebuilt",
        "sample points held",
    ]);

    for b in 1..=batches {
        let new = DatasetSpec::paper_uniform(batch, 100 + b as u64).generate();
        incremental.add_run(new.clone()).unwrap();
        all_data.extend(new);

        let inc_estimates: Vec<_> = (1..DECTILES)
            .map(|i| incremental.estimate(i as f64 / DECTILES as f64).unwrap())
            .collect();
        let inc_rates = error_rates_for_bounds(&all_data, &to_bounds_view(&inc_estimates));

        let rebuilt_store = MemRunStore::new(all_data.clone(), m);
        let rebuilt_sketch = OpaqEstimator::new(config)
            .build_sketch(&rebuilt_store)
            .unwrap();
        let rebuilt_estimates = rebuilt_sketch.estimate_q_quantiles(DECTILES).unwrap();
        let rebuilt_rates = error_rates_for_bounds(&all_data, &to_bounds_view(&rebuilt_estimates));

        table.row([
            b.to_string(),
            all_data.len().to_string(),
            fmt2(inc_rates.rer_n),
            fmt2(rebuilt_rates.rer_n),
            incremental
                .sketch()
                .unwrap()
                .memory_sample_points()
                .to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("expectation: the incremental error matches the from-scratch rebuild at every step");
}
