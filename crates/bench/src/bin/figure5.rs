//! Figure 5: size-up of parallel OPAQ — total (modelled) execution time as
//! the per-processor data size grows (0.5 M → 4 M) for p = 1, 2, 4, 8, 16.
//! Linear growth (flat throughput) is ideal size-up.
//!
//! Run with `cargo run --release -p opaq-bench --bin figure5`.

use opaq_bench::scaled;
use opaq_core::OpaqConfig;
use opaq_datagen::DatasetSpec;
use opaq_metrics::TextTable;
use opaq_parallel::{block_partition, MergeAlgorithm, ParallelOpaq, ScalingReport};

fn main() {
    let per_proc_paper: [u64; 4] = [500_000, 1_000_000, 2_000_000, 4_000_000];
    let processors = [1usize, 2, 4, 8, 16];
    let s = 1024u64;

    let mut table =
        TextTable::new("Figure 5: size-up — modelled total time (s) vs per-processor data size")
            .header(["p", "0.5M", "1M", "2M", "4M", "throughput ratio 4M/0.5M"]);

    for &p in &processors {
        let mut row = vec![p.to_string()];
        let mut scaling = ScalingReport::new();
        for &per_paper in &per_proc_paper {
            let per = scaled(per_paper);
            let n = per * p as u64;
            let data = DatasetSpec::paper_uniform(n, 5).generate();
            let m = (per / 4).max(s);
            let config = OpaqConfig::builder()
                .run_length(m)
                .sample_size(s.min(m))
                .build()
                .unwrap();
            let popaq = ParallelOpaq::new(config, p).with_merge(MergeAlgorithm::Sample);
            let report = popaq.run_on_partitions(block_partition(&data, p)).unwrap();
            let total = report.modelled.total();
            scaling.push(p, n, total);
            row.push(format!("{:.2}", total.as_secs_f64()));
        }
        let throughputs = scaling.throughputs();
        let ratio = throughputs.last().unwrap_or(&0.0) / throughputs.first().unwrap_or(&1.0);
        row.push(format!("{ratio:.2}"));
        table.row(row);
    }
    print!("{}", table.render());
    println!("expectation: time grows linearly with the per-processor size (throughput ratio close to 1.0)");
}
