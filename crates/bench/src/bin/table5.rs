//! Table 5: RER_A of OPAQ for different dataset sizes (1 M, 5 M, 10 M keys)
//! with s = 1000, uniform and Zipf(0.86) distributions.
//!
//! Run with `cargo run --release -p opaq-bench --bin table5`.

use opaq_bench::{dectile_labels, paper_run_length, run_sequential_accuracy, scaled};
use opaq_datagen::DatasetSpec;
use opaq_metrics::{fmt2, TextTable};

fn main() {
    let sizes = [scaled(1_000_000), scaled(5_000_000), scaled(10_000_000)];
    let s = 1000u64;

    // [dist][size][dectile]
    let mut results: Vec<Vec<Vec<f64>>> = vec![Vec::new(), Vec::new()];
    for (di, make_spec) in [
        DatasetSpec::paper_uniform as fn(u64, u64) -> DatasetSpec,
        DatasetSpec::paper_zipf,
    ]
    .into_iter()
    .enumerate()
    {
        for &n in &sizes {
            let spec = make_spec(n, 42 + di as u64);
            let run = run_sequential_accuracy(&spec, paper_run_length(n), s);
            results[di].push(run.rates.rer_a_per_quantile.clone());
        }
    }

    let mut table = TextTable::new(format!(
        "Table 5: RER_A (%) by dataset size (s = {s}), sizes {} / {} / {} (uniform | zipf 0.86)",
        sizes[0], sizes[1], sizes[2]
    ))
    .header(["dectile", "u 1M", "u 5M", "u 10M", "z 1M", "z 5M", "z 10M"]);
    for (d, label) in dectile_labels().into_iter().enumerate() {
        table.row([
            label,
            fmt2(results[0][0][d]),
            fmt2(results[0][1][d]),
            fmt2(results[0][2][d]),
            fmt2(results[1][0][d]),
            fmt2(results[1][1][d]),
            fmt2(results[1][2][d]),
        ]);
    }
    print!("{}", table.render());
    println!("expectation: RER_A is independent of n and of the distribution (paper reports ~0.09 everywhere)");
}
