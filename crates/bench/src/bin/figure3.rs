//! Figure 3: measured execution time of the bitonic merge vs the sample
//! merge for p = 2, 4, 8 processors and per-processor sample-list sizes from
//! 1K to 128K entries.
//!
//! Run with `cargo run --release -p opaq-bench --bin figure3`.

use opaq_metrics::TextTable;
use opaq_parallel::{bitonic_merge, sample_merge, CostModel, Machine};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn sorted_lists(p: usize, per: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..p)
        .map(|_| {
            let mut l: Vec<u64> = (0..per)
                .map(|_| rng.gen_range(0..u32::MAX as u64))
                .collect();
            l.sort_unstable();
            l
        })
        .collect()
}

fn time_merge(p: usize, per: usize, bitonic: bool) -> f64 {
    let machine = Machine::new(p, CostModel::sp2());
    let lists = sorted_lists(p, per, (p * per) as u64);
    let start = Instant::now();
    let out = if bitonic {
        bitonic_merge(&machine, lists)
    } else {
        sample_merge(&machine, lists)
    };
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(out.iter().map(Vec::len).sum::<usize>(), p * per);
    elapsed
}

fn main() {
    // Per-processor list sizes (entries); the paper's x-axis is 1K..128K bytes.
    let sizes = [
        1_024usize, 2_048, 4_096, 8_192, 16_384, 32_768, 65_536, 131_072,
    ];
    let processors = [2usize, 4, 8];

    let mut table =
        TextTable::new("Figure 3: measured global-merge wall time (ms) — Bitonic vs Sample merge")
            .header([
                "entries/proc",
                "p=2 bitonic",
                "p=2 sample",
                "p=4 bitonic",
                "p=4 sample",
                "p=8 bitonic",
                "p=8 sample",
            ]);
    for &per in &sizes {
        let mut row = vec![per.to_string()];
        for &p in &processors {
            row.push(format!("{:.3}", time_merge(p, per, true) * 1e3));
            row.push(format!("{:.3}", time_merge(p, per, false) * 1e3));
        }
        table.row(row);
    }
    print!("{}", table.render());
    println!("expectation: bitonic is competitive for small lists/p; sample merge wins as lists and p grow");
}
