//! Table 11: the fraction of total execution time spent in I/O, for
//! 0.5 M – 4 M elements per processor and 1 – 16 processors (modelled times
//! under the SP-2-like disk and communication models).
//!
//! Run with `cargo run --release -p opaq-bench --bin table11`.

use opaq_bench::scaled;
use opaq_core::OpaqConfig;
use opaq_datagen::DatasetSpec;
use opaq_metrics::TextTable;
use opaq_parallel::{block_partition, MergeAlgorithm, ParallelOpaq};

fn main() {
    let per_proc_paper: [u64; 4] = [500_000, 1_000_000, 2_000_000, 4_000_000];
    let processors = [1usize, 2, 4, 8, 16];
    let s = 1024u64;

    let mut table =
        TextTable::new("Table 11: I/O time as a fraction of total (modelled SP-2 disk + switch)")
            .header(["per-proc", "p=1", "p=2", "p=4", "p=8", "p=16"]);

    for &per_paper in &per_proc_paper {
        let per = scaled(per_paper);
        let mut row = vec![format!("{:.1}M", per_paper as f64 / 1e6)];
        for &p in &processors {
            let n = per * p as u64;
            let data = DatasetSpec::paper_uniform(n, 5).generate();
            let m = (per / 4).max(s);
            let config = OpaqConfig::builder()
                .run_length(m)
                .sample_size(s.min(m))
                .build()
                .unwrap();
            let popaq = ParallelOpaq::new(config, p).with_merge(MergeAlgorithm::Sample);
            let report = popaq.run_on_partitions(block_partition(&data, p)).unwrap();
            row.push(format!("{:.2}", report.modelled.io_fraction()));
        }
        table.row(row);
    }
    print!("{}", table.render());
    println!(
        "expectation: roughly constant ~0.5 across sizes and processor counts (paper Table 11)"
    );
}
