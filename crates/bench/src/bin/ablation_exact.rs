//! Ablation (§4 extension): the exact-quantile second pass.
//!
//! Measures, for several sample sizes, how many candidate elements the
//! second pass has to buffer (Lemma 3 bounds it by 2n/s) and verifies the
//! returned value against a full sort.
//!
//! Run with `cargo run --release -p opaq-bench --bin ablation_exact`.

use opaq_bench::{paper_run_length, scaled};
use opaq_core::{exact_quantile, OpaqConfig, OpaqEstimator};
use opaq_datagen::DatasetSpec;
use opaq_metrics::{GroundTruth, TextTable};
use opaq_storage::MemRunStore;

fn main() {
    let n = scaled(1_000_000);
    let m = paper_run_length(n);
    let data = DatasetSpec::paper_uniform(n, 21).generate();
    let truth = GroundTruth::new(&data);
    let store = MemRunStore::new(data, m);

    let mut table = TextTable::new(format!(
        "Ablation: exact second pass, n = {n} — candidates kept vs the 2n/s bound"
    ))
    .header([
        "s",
        "candidates kept",
        "bound 2n/s",
        "median exact?",
        "p90 exact?",
    ]);

    for s in [100u64, 250, 500, 1000, 2000] {
        let config = OpaqConfig::builder()
            .run_length(m)
            .sample_size(s)
            .build()
            .unwrap();
        let sketch = OpaqEstimator::new(config).build_sketch(&store).unwrap();
        let median = exact_quantile(&store, &sketch, 0.5).unwrap();
        let p90 = exact_quantile(&store, &sketch, 0.9).unwrap();
        table.row([
            s.to_string(),
            median.candidates_kept.to_string(),
            (2 * n / s).to_string(),
            (median.value == truth.quantile_value(0.5)).to_string(),
            (p90.value == truth.quantile_value(0.9)).to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("expectation: candidates <= 2n/s (+duplicates of the bounds) and every exact value matches the full sort");
}
