//! Table 10: RER_L and RER_N of the parallel algorithm (8 processors) for
//! total dataset sizes from 0.5 M to 32 M keys, uniform distribution.
//!
//! Run with `cargo run --release -p opaq-bench --bin table10`.

use opaq_bench::{error_rates_for_bounds, scaled, to_bounds_view, DECTILES};
use opaq_core::OpaqConfig;
use opaq_datagen::DatasetSpec;
use opaq_metrics::{fmt2, TextTable};
use opaq_parallel::{block_partition, MergeAlgorithm, ParallelOpaq};

fn main() {
    let p = 8usize;
    let paper_sizes: [u64; 7] = [
        500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000, 16_000_000, 32_000_000,
    ];
    let sizes: Vec<u64> = paper_sizes.iter().map(|&n| scaled(n)).collect();
    let s = 1024u64;

    let mut rer_l = vec!["RER_L".to_string()];
    let mut rer_n = vec!["RER_N".to_string()];
    for &n in &sizes {
        let spec = DatasetSpec::paper_uniform(n, 11);
        let data = spec.generate();
        let m = (n / (p as u64 * 4)).max(s);
        let config = OpaqConfig::builder()
            .run_length(m)
            .sample_size(s.min(m))
            .build()
            .unwrap();
        let popaq = ParallelOpaq::new(config, p).with_merge(MergeAlgorithm::Sample);
        let report = popaq.run_on_partitions(block_partition(&data, p)).unwrap();
        let estimates = report.sketch.estimate_q_quantiles(DECTILES).unwrap();
        let rates = error_rates_for_bounds(&data, &to_bounds_view(&estimates));
        rer_l.push(fmt2(rates.rer_l));
        rer_n.push(fmt2(rates.rer_n));
    }

    let mut header = vec!["metric".to_string()];
    header.extend(sizes.iter().map(|n| format!("{:.1}M", *n as f64 / 1e6)));
    let mut table = TextTable::new(format!(
        "Table 10: RER_L / RER_N (%) of parallel OPAQ, p = {p}, s = {s}, uniform distribution"
    ))
    .header(header);
    table.row(rer_l);
    table.row(rer_n);
    print!("{}", table.render());
    println!("expectation: ~0.5-0.7% everywhere, matching the sequential algorithm");
}
