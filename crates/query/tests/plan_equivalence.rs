//! Plan-equivalence suite: a pipeline must be a *refactoring* of the manual
//! workflow, never a different computation.
//!
//! Two equivalences are pinned.  A coalescing plan's answer equals merging
//! the same snapshots by hand (the deterministic tree, and for three
//! sources the plain left-fold it degenerates to) and querying the fused
//! sketch directly.  And a degenerate single-target plan equals what
//! `QueryEngine::execute` returns for the same `(tenant, dataset, request)`
//! — the guarantee that lets the HTTP layer route its legacy GET family
//! through the plan executor without changing a byte.

use opaq_core::{IncrementalOpaq, OpaqConfig, QuantileSketch};
use opaq_query::{merge_tree, PlanExecutor, QueryPlan};
use opaq_serve::{execute_on, DatasetId, QueryEngine, QueryRequest, SketchCatalog, TenantId};
use std::sync::Arc;

fn sketch_of(range: std::ops::Range<u64>) -> QuantileSketch<u64> {
    let config = OpaqConfig::builder()
        .run_length(1_000)
        .sample_size(100)
        .build()
        .unwrap();
    let mut inc = IncrementalOpaq::new(config).unwrap();
    inc.add_run(range.collect()).unwrap();
    inc.into_sketch().unwrap()
}

fn fixture() -> (Arc<SketchCatalog>, Vec<Arc<QuantileSketch<u64>>>) {
    let catalog = Arc::new(SketchCatalog::unbounded());
    let ranges = [0..4_000u64, 4_000..7_000, 7_000..12_000];
    let mut sketches = Vec::new();
    for (i, range) in ranges.into_iter().enumerate() {
        let sketch = sketch_of(range);
        sketches.push(Arc::new(sketch.clone()));
        catalog
            .publish(
                &TenantId::new(format!("tenant-{i}")),
                &DatasetId::new("events"),
                sketch,
            )
            .unwrap();
    }
    // An entry the `tenant-*` glob must not see.
    catalog
        .publish(
            &TenantId::new("other"),
            &DatasetId::new("events"),
            sketch_of(0..50),
        )
        .unwrap();
    (catalog, sketches)
}

fn extracts() -> Vec<(&'static str, QueryRequest)> {
    vec![
        ("quantile 0.5", QueryRequest::Quantile { phi: 0.5 }),
        (
            "quantile 0.1,0.5,0.9",
            QueryRequest::QuantileBatch {
                phis: vec![0.1, 0.5, 0.9],
            },
        ),
        ("rank 6000", QueryRequest::Rank { key: 6_000 }),
        ("profile 16", QueryRequest::Profile { count: 16 }),
    ]
}

#[test]
fn coalescing_plan_equals_manual_merge_plus_direct_query() {
    let (catalog, sketches) = fixture();
    let executor = PlanExecutor::new(catalog);
    // The canonical offline fuse, and the left-fold it must equal for three
    // inputs (the tree is ((0+1)+2) with the odd sketch carried over).
    let fused = merge_tree(&sketches).unwrap();
    let folded = sketches[0]
        .merge(&sketches[1])
        .unwrap()
        .merge(&sketches[2])
        .unwrap();
    assert_eq!(*fused, folded, "tree and fold agree on three inputs");

    for (extract, request) in extracts() {
        let plan =
            QueryPlan::parse(&format!("fetch tenant-*/events | coalesce | {extract}")).unwrap();
        let response = executor.execute(&plan).unwrap();
        assert_eq!(
            response.output,
            execute_on(&fused, &request).unwrap(),
            "plan '{extract}' differs from the manual merge + direct query"
        );
        assert_eq!(response.total_elements, fused.total_elements());
        assert_eq!(
            response.sources.len(),
            3,
            "the glob saw exactly the fan-out"
        );
        assert!(response
            .sources
            .iter()
            .all(|s| s.tenant.as_str().starts_with("tenant-")));
    }
}

#[test]
fn degenerate_plan_equals_engine_execute() {
    let (catalog, _sketches) = fixture();
    let engine = QueryEngine::new(Arc::clone(&catalog));
    let executor = PlanExecutor::new(catalog);
    let (tenant, dataset) = (TenantId::new("tenant-1"), DatasetId::new("events"));

    for (extract, request) in extracts() {
        let via_engine = engine.execute(&tenant, &dataset, &request).unwrap();
        // Typed single-target construction, as the HTTP GET family uses...
        let plan = QueryPlan::single(tenant.clone(), dataset.clone(), request);
        let via_plan = executor.execute(&plan).unwrap();
        assert_eq!(via_plan.output, via_engine.output, "{extract}");
        assert_eq!(via_plan.total_elements, via_engine.total_elements);
        let source = &via_plan.sources[0];
        assert_eq!(via_plan.sources.len(), 1);
        assert_eq!(source.version, via_engine.version);
        assert_eq!(source.freshness, via_engine.freshness);
        // ...and the parsed text form lands on the same response.
        let parsed = QueryPlan::parse(&format!("fetch tenant-1/events | {extract}")).unwrap();
        assert_eq!(executor.execute(&parsed).unwrap(), via_plan);
    }
}

#[test]
fn plan_answers_are_stable_across_repeated_execution() {
    // Determinism end to end: same catalog, same plan, same bytes-to-be —
    // the property the workload verifier leans on.
    let (catalog, _sketches) = fixture();
    let executor = PlanExecutor::new(catalog);
    let plan = QueryPlan::parse("fetch tenant-*/events | coalesce | quantile 0.25,0.75").unwrap();
    let first = executor.execute(&plan).unwrap();
    for _ in 0..5 {
        assert_eq!(executor.execute(&plan).unwrap(), first);
    }
}
