//! Property suite for the pipeline glob matcher.
//!
//! The matcher is the only piece of the query layer with a combinatorial
//! input space, and a subtle backtracking bug (greedy `*` that never
//! retries) would silently narrow plan fan-outs — the executor would fetch
//! fewer tenants than the selector names and every downstream byte check
//! would chase a phantom.  These properties pin the algebra instead of
//! examples: literals are exact anchored equality, `*` insertion only ever
//! widens a match, `?` consumes exactly one scalar, adjacent stars
//! collapse.

use opaq_query::glob_match;
use proptest::prelude::*;

/// Deterministic text over an alphabet with multi-byte scalars and the
/// characters tenant ids actually use — but never a metacharacter, so any
/// generated text doubles as a literal pattern.
fn text_from(seed: u64, len: usize) -> String {
    const ALPHABET: [char; 8] = ['a', 'b', '-', '0', 'é', '日', '_', '.'];
    (0..len)
        .map(|i| {
            let mix = seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15);
            ALPHABET[(mix >> 32) as usize % ALPHABET.len()]
        })
        .collect()
}

/// Insert `c` at the `at`-th char boundary (clamped).
fn insert_at_char(text: &str, at: usize, c: char) -> String {
    let chars: Vec<char> = text.chars().collect();
    let at = at % (chars.len() + 1);
    let mut out: String = chars[..at].iter().collect();
    out.push(c);
    out.extend(&chars[at..]);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A metacharacter-free pattern is anchored equality: it matches itself
    /// and nothing longer on either side.
    #[test]
    fn literal_patterns_are_anchored_equality(
        seed in any::<u64>(),
        len in 0usize..20,
        pad in 1usize..5,
    ) {
        let text = text_from(seed, len);
        prop_assert!(glob_match(&text, &text));
        let padding = text_from(seed ^ 0xDEAD, pad);
        prop_assert!(!glob_match(&text, &format!("{text}{padding}")));
        prop_assert!(!glob_match(&text, &format!("{padding}{text}")));
    }

    /// `*` alone matches every text, and inserting a `*` anywhere into a
    /// matching pattern never breaks the match (it can only widen).
    #[test]
    fn star_insertion_only_widens(
        seed in any::<u64>(),
        len in 0usize..20,
        at in any::<usize>(),
    ) {
        let text = text_from(seed, len);
        prop_assert!(glob_match("*", &text));
        let widened = insert_at_char(&text, at, '*');
        prop_assert!(glob_match(&widened, &text), "{widened:?} vs {text:?}");
    }

    /// `?` consumes exactly one scalar — a run of n `?`s matches texts of n
    /// chars (bytes be damned) and no other length.
    #[test]
    fn question_mark_is_exactly_one_scalar(
        seed in any::<u64>(),
        len in 0usize..12,
    ) {
        let pattern = "?".repeat(len);
        prop_assert!(glob_match(&pattern, &text_from(seed, len)));
        prop_assert!(!glob_match(&pattern, &text_from(seed, len + 1)));
        if len > 0 {
            prop_assert!(!glob_match(&pattern, &text_from(seed, len - 1)));
        }
    }

    /// Adjacent stars collapse: `a**b` and `a*b` accept the same texts.
    #[test]
    fn adjacent_stars_collapse(
        seed in any::<u64>(),
        prefix_len in 0usize..6,
        suffix_len in 0usize..6,
        text_len in 0usize..20,
    ) {
        let prefix = text_from(seed, prefix_len);
        let suffix = text_from(seed ^ 0xBEEF, suffix_len);
        let single = format!("{prefix}*{suffix}");
        let double = format!("{prefix}**{suffix}");
        let text = text_from(seed ^ 0xF00D, text_len);
        prop_assert_eq!(glob_match(&single, &text), glob_match(&double, &text));
        // And both accept the text they were built from.
        let built = format!("{prefix}{text}{suffix}");
        prop_assert!(glob_match(&single, &built));
        prop_assert!(glob_match(&double, &built));
    }

    /// Prefix and suffix globs behave like `starts_with` / `ends_with`.
    #[test]
    fn prefix_and_suffix_globs(
        seed in any::<u64>(),
        len in 0usize..12,
        tail_len in 0usize..12,
    ) {
        let stem = text_from(seed, len);
        let tail = text_from(seed ^ 0xACE, tail_len);
        let joined = format!("{stem}{tail}");
        prop_assert!(glob_match(&format!("{stem}*"), &joined));
        prop_assert!(glob_match(&format!("*{tail}"), &joined));
        prop_assert_eq!(
            glob_match(&format!("{stem}*"), &joined),
            joined.starts_with(&stem)
        );
    }
}
