//! The hand-rolled pipeline-expression parser.
//!
//! Same spirit as the HTTP parser in `opaq-net`: no dependencies, no
//! regular expressions, every rejection a typed error naming the stage it
//! came from.  The grammar is deliberately tiny — see the crate-level docs
//! for the reference — so the parser is a single pass over `|`-separated
//! stages with one keyword lookup each.

use crate::plan::{QueryPlan, Selector};
use crate::QueryError;
use opaq_serve::QueryRequest;

fn parse_error(stage: usize, message: impl Into<String>) -> QueryError {
    QueryError::Parse {
        message: message.into(),
        stage,
    }
}

/// Parse one pipeline expression into a [`QueryPlan`].
pub(crate) fn parse(text: &str) -> Result<QueryPlan, QueryError> {
    let stages: Vec<&str> = text.split('|').map(str::trim).collect();
    if stages.iter().all(|s| s.is_empty()) {
        return Err(parse_error(1, "empty plan: expected 'fetch ... | ...'"));
    }
    if stages.len() > 3 {
        return Err(parse_error(
            4,
            "too many stages: a plan is 'fetch SELECTOR [| coalesce] | EXTRACT'",
        ));
    }

    let selector = parse_fetch(1, stages[0])?;
    let (coalesce, extract_idx) = match stages.len() {
        2 => (false, 1),
        3 => {
            parse_coalesce(2, stages[1])?;
            (true, 2)
        }
        _ => return Err(parse_error(
            2,
            "missing extract stage: end the plan with 'quantile ...', 'rank ...' or 'profile ...'",
        )),
    };
    let extract = parse_extract(extract_idx + 1, stages[extract_idx])?;
    Ok(QueryPlan {
        selector,
        coalesce,
        extract,
    })
}

/// `fetch TENANT-PATTERN[/DATASET-PATTERN]` — a missing dataset pattern
/// defaults to `*` (every dataset of the matched tenants).
fn parse_fetch(stage: usize, text: &str) -> Result<Selector, QueryError> {
    let Some(rest) = keyword(text, "fetch") else {
        return Err(parse_error(
            stage,
            format!("expected 'fetch TENANT/DATASET', got '{text}'"),
        ));
    };
    let selector = rest.trim();
    if selector.is_empty() {
        return Err(parse_error(
            stage,
            "fetch needs a selector: 'fetch TENANT/DATASET' (globs with * and ? allowed)",
        ));
    }
    if selector.split_whitespace().nth(1).is_some() {
        return Err(parse_error(
            stage,
            format!("fetch takes one selector, got '{selector}'"),
        ));
    }
    let (tenant, dataset) = match selector.split_once('/') {
        Some((tenant, dataset)) => (tenant, dataset),
        None => (selector, "*"),
    };
    if tenant.is_empty() {
        return Err(parse_error(stage, "empty tenant pattern in fetch selector"));
    }
    if dataset.is_empty() {
        return Err(parse_error(
            stage,
            "empty dataset pattern in fetch selector (omit the '/' to select every dataset)",
        ));
    }
    Ok(Selector::compile(tenant, dataset))
}

/// `coalesce` (alias `merge`) — no arguments.
fn parse_coalesce(stage: usize, text: &str) -> Result<(), QueryError> {
    match text {
        "coalesce" | "merge" => Ok(()),
        _ if keyword(text, "coalesce").is_some() || keyword(text, "merge").is_some() => Err(
            parse_error(stage, format!("coalesce takes no arguments, got '{text}'")),
        ),
        _ => Err(parse_error(
            stage,
            format!("expected 'coalesce' between fetch and extract, got '{text}'"),
        )),
    }
}

/// `quantile PHI[,PHI...]` | `rank KEY` | `profile COUNT`.
fn parse_extract(stage: usize, text: &str) -> Result<QueryRequest, QueryError> {
    if let Some(rest) = keyword(text, "quantile") {
        let phis = parse_phis(stage, rest.trim())?;
        return Ok(if phis.len() == 1 {
            QueryRequest::Quantile { phi: phis[0] }
        } else {
            QueryRequest::QuantileBatch { phis }
        });
    }
    if let Some(rest) = keyword(text, "rank") {
        let key = rest.trim().parse::<u64>().map_err(|_| {
            parse_error(
                stage,
                format!("rank needs one unsigned integer key, got '{}'", rest.trim()),
            )
        })?;
        return Ok(QueryRequest::Rank { key });
    }
    if let Some(rest) = keyword(text, "profile") {
        let count = rest.trim().parse::<u64>().map_err(|_| {
            parse_error(
                stage,
                format!(
                    "profile needs one unsigned bucket count, got '{}'",
                    rest.trim()
                ),
            )
        })?;
        return Ok(QueryRequest::Profile { count });
    }
    Err(parse_error(
        stage,
        format!("expected 'quantile ...', 'rank ...' or 'profile ...', got '{text}'"),
    ))
}

fn parse_phis(stage: usize, text: &str) -> Result<Vec<f64>, QueryError> {
    if text.is_empty() {
        return Err(parse_error(
            stage,
            "quantile needs at least one fraction, e.g. 'quantile 0.5,0.99'",
        ));
    }
    let mut phis = Vec::new();
    for part in text.split(',') {
        let part = part.trim();
        let phi = part.parse::<f64>().map_err(|_| {
            parse_error(
                stage,
                format!("quantile fraction must be a number, got '{part}'"),
            )
        })?;
        if !phi.is_finite() {
            return Err(parse_error(
                stage,
                format!("quantile fraction must be finite, got '{part}'"),
            ));
        }
        phis.push(phi);
    }
    Ok(phis)
}

/// If `text` starts with `word` followed by end-of-input or whitespace,
/// return the remainder.  Keywords are case-sensitive, like HTTP methods.
fn keyword<'a>(text: &'a str, word: &str) -> Option<&'a str> {
    let rest = text.strip_prefix(word)?;
    if rest.is_empty() || rest.starts_with(char::is_whitespace) {
        Some(rest)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opaq_serve::{DatasetId, TenantId};

    fn parse_ok(text: &str) -> QueryPlan {
        parse(text).unwrap_or_else(|e| panic!("'{text}' should parse: {e}"))
    }

    fn parse_err(text: &str) -> (String, usize) {
        match parse(text) {
            Err(QueryError::Parse { message, stage }) => (message, stage),
            other => panic!("'{text}' should fail to parse, got {other:?}"),
        }
    }

    #[test]
    fn full_pipeline_parses() {
        let plan = parse_ok("fetch tenant-*/events | coalesce | quantile 0.5,0.99");
        assert!(plan.coalesce);
        assert!(matches!(plan.selector, Selector::Glob { .. }));
        assert_eq!(
            plan.extract,
            QueryRequest::QuantileBatch {
                phis: vec![0.5, 0.99]
            }
        );
    }

    #[test]
    fn merge_is_an_alias_for_coalesce() {
        assert_eq!(
            parse_ok("fetch a/b | merge | rank 100"),
            parse_ok("fetch a/b | coalesce | rank 100")
        );
    }

    #[test]
    fn single_phi_lowers_to_scalar_quantile() {
        let plan = parse_ok("fetch acme/events | quantile 0.5");
        assert!(!plan.coalesce);
        assert_eq!(plan.extract, QueryRequest::Quantile { phi: 0.5 });
        assert_eq!(
            plan.selector,
            Selector::Exact {
                tenant: TenantId::from("acme"),
                dataset: DatasetId::from("events"),
            }
        );
    }

    #[test]
    fn missing_dataset_pattern_defaults_to_star() {
        let plan = parse_ok("fetch acme | profile 10");
        assert_eq!(
            plan.selector,
            Selector::Glob {
                tenant: "acme".to_string(),
                dataset: "*".to_string(),
            }
        );
        assert_eq!(plan.extract, QueryRequest::Profile { count: 10 });
    }

    #[test]
    fn whitespace_is_forgiven_everywhere() {
        let plan = parse_ok("  fetch   t-*/d  |  coalesce  |  quantile  0.1 , 0.9  ");
        assert!(plan.coalesce);
        assert_eq!(
            plan.extract,
            QueryRequest::QuantileBatch {
                phis: vec![0.1, 0.9]
            }
        );
    }

    #[test]
    fn rank_and_profile_parse_integers() {
        assert_eq!(
            parse_ok("fetch a/b | rank 12345").extract,
            QueryRequest::Rank { key: 12345 }
        );
        assert_eq!(
            parse_ok("fetch a/b | profile 8").extract,
            QueryRequest::Profile { count: 8 }
        );
    }

    #[test]
    fn errors_name_the_offending_stage() {
        assert_eq!(parse_err("").1, 1);
        assert_eq!(parse_err("quantile 0.5").1, 1);
        assert_eq!(parse_err("fetch a/b").1, 2);
        assert_eq!(parse_err("fetch a/b | bogus | quantile 0.5").1, 2);
        assert_eq!(parse_err("fetch a/b | coalesce | bogus 1").1, 3);
        assert_eq!(parse_err("fetch a/b | c | q | extra").1, 4);
    }

    #[test]
    fn malformed_selectors_are_rejected() {
        assert!(parse_err("fetch | quantile 0.5").0.contains("selector"));
        assert!(parse_err("fetch /events | quantile 0.5")
            .0
            .contains("empty tenant"));
        assert!(parse_err("fetch acme/ | quantile 0.5")
            .0
            .contains("empty dataset"));
        assert!(parse_err("fetch a b | quantile 0.5")
            .0
            .contains("one selector"));
        assert!(parse_err("fetchx a/b | quantile 0.5").0.contains("fetch"));
    }

    #[test]
    fn malformed_extracts_are_rejected() {
        assert!(parse_err("fetch a/b | quantile").0.contains("at least one"));
        assert!(parse_err("fetch a/b | quantile nan").0.contains("finite"));
        assert!(parse_err("fetch a/b | quantile inf").0.contains("finite"));
        assert!(parse_err("fetch a/b | quantile 0.5,,0.9")
            .0
            .contains("number"));
        assert!(parse_err("fetch a/b | rank -1").0.contains("unsigned"));
        assert!(parse_err("fetch a/b | rank 1.5").0.contains("unsigned"));
        assert!(parse_err("fetch a/b | profile ten").0.contains("unsigned"));
        assert!(parse_err("fetch a/b | quantile55").0.contains("expected"));
    }

    #[test]
    fn coalesce_takes_no_arguments() {
        assert!(parse_err("fetch a/b | coalesce now | quantile 0.5")
            .0
            .contains("no arguments"));
    }

    #[test]
    fn out_of_range_phi_parses_and_fails_at_execution_instead() {
        // The parser only insists on finite numbers; range checking lives in
        // the sketch so HTTP 400s for phi=1.5 flow through one error path.
        assert_eq!(
            parse_ok("fetch a/b | quantile 1.5").extract,
            QueryRequest::Quantile { phi: 1.5 }
        );
    }
}
