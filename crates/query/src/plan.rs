//! Typed query plans: what a pipeline expression compiles to.

use crate::glob::{glob_match, is_literal};
use crate::parser;
use crate::QueryError;
use opaq_serve::{DatasetId, QueryRequest, TenantId};

/// Which catalog entries a plan's `fetch` stage resolves.
#[derive(Debug, Clone, PartialEq)]
pub enum Selector {
    /// Exactly one `(tenant, dataset)` entry, by literal equality.  This is
    /// also the only way to address an id whose *name* contains `*` or `?`:
    /// exact selectors never interpret wildcards.
    Exact {
        /// The tenant addressed.
        tenant: TenantId,
        /// The dataset addressed.
        dataset: DatasetId,
    },
    /// Every entry whose tenant and dataset both match the glob patterns
    /// (`*` = any run, `?` = one character; see [`crate::glob_match`]).
    Glob {
        /// Pattern matched against tenant ids.
        tenant: String,
        /// Pattern matched against dataset ids.
        dataset: String,
    },
}

impl Selector {
    /// Compile a `tenant-pattern/dataset-pattern` pair, lowering patterns
    /// with no wildcard characters to an [`Selector::Exact`] lookup.
    pub fn compile(tenant: &str, dataset: &str) -> Self {
        if is_literal(tenant) && is_literal(dataset) {
            Selector::Exact {
                tenant: TenantId::from(tenant),
                dataset: DatasetId::from(dataset),
            }
        } else {
            Selector::Glob {
                tenant: tenant.to_string(),
                dataset: dataset.to_string(),
            }
        }
    }

    /// Whether this selector covers `(tenant, dataset)`.
    pub fn matches(&self, tenant: &TenantId, dataset: &DatasetId) -> bool {
        match self {
            Selector::Exact {
                tenant: t,
                dataset: d,
            } => t == tenant && d == dataset,
            Selector::Glob {
                tenant: tp,
                dataset: dp,
            } => glob_match(tp, tenant.as_str()) && glob_match(dp, dataset.as_str()),
        }
    }

    /// The selector's textual form, for error messages and reports.
    pub fn display_pattern(&self) -> String {
        match self {
            Selector::Exact { tenant, dataset } => format!("{tenant}/{dataset}"),
            Selector::Glob { tenant, dataset } => format!("{tenant}/{dataset}"),
        }
    }
}

/// A compiled pipeline: `fetch <selector> [| coalesce] | <extract>`.
///
/// Every HTTP and CLI query in the system is one of these — the legacy
/// single-target GET routes compile to degenerate plans via
/// [`QueryPlan::single`] and run through the exact same executor as a
/// cross-tenant rollup.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// Which entries the `fetch` stage resolves.
    pub selector: Selector,
    /// Whether fetched sketches are fused with the deterministic merge tree.
    /// Plans whose selector resolves more than one entry must coalesce;
    /// the executor rejects multi-source plans without it.
    pub coalesce: bool,
    /// The terminal extraction applied to the (possibly fused) sketch.
    pub extract: QueryRequest,
}

impl QueryPlan {
    /// Parse a pipeline expression — see the crate-level grammar reference.
    ///
    /// # Errors
    /// [`QueryError::Parse`] describing the offending stage.
    pub fn parse(text: &str) -> Result<Self, QueryError> {
        parser::parse(text)
    }

    /// The degenerate one-target plan the legacy single-`(tenant, dataset)`
    /// API surfaces compile to.  Always an exact selector, so ids containing
    /// wildcard characters stay addressable through the typed API.
    pub fn single(tenant: TenantId, dataset: DatasetId, request: QueryRequest) -> Self {
        QueryPlan {
            selector: Selector::Exact { tenant, dataset },
            coalesce: false,
            extract: request,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_selectors_lower_to_exact() {
        let s = Selector::compile("acme", "events");
        assert_eq!(
            s,
            Selector::Exact {
                tenant: TenantId::from("acme"),
                dataset: DatasetId::from("events"),
            }
        );
        assert!(s.matches(&TenantId::from("acme"), &DatasetId::from("events")));
        assert!(!s.matches(&TenantId::from("acme2"), &DatasetId::from("events")));
    }

    #[test]
    fn wildcard_selectors_stay_globs() {
        let s = Selector::compile("tenant-*", "events");
        assert!(matches!(s, Selector::Glob { .. }));
        assert!(s.matches(&TenantId::from("tenant-7"), &DatasetId::from("events")));
        assert!(!s.matches(&TenantId::from("ttl-probe"), &DatasetId::from("events")));
    }

    #[test]
    fn exact_selectors_treat_wildcard_names_literally() {
        let s = Selector::Exact {
            tenant: TenantId::from("t*"),
            dataset: DatasetId::from("d"),
        };
        assert!(s.matches(&TenantId::from("t*"), &DatasetId::from("d")));
        assert!(!s.matches(&TenantId::from("tx"), &DatasetId::from("d")));
    }

    #[test]
    fn single_builds_a_degenerate_exact_plan() {
        let plan = QueryPlan::single(
            TenantId::from("a"),
            DatasetId::from("d"),
            QueryRequest::Quantile { phi: 0.5 },
        );
        assert!(!plan.coalesce);
        assert!(matches!(plan.selector, Selector::Exact { .. }));
    }
}
