//! Wildcard matching for tenant/dataset selectors.
//!
//! Patterns are matched against the *whole* id (anchored at both ends) with
//! two metacharacters:
//!
//! * `*` — any run of characters, including the empty run;
//! * `?` — exactly one character.
//!
//! Matching is per `char`, not per byte, so `?` consumes one Unicode scalar
//! (a tenant named `café` matches `caf?`) and a `*` can never split a
//! multi-byte scalar in half.  There is no escape syntax: a tenant whose
//! *name* contains `*` or `?` is not addressable through a textual pattern —
//! address it through a typed [`crate::Selector::Exact`] instead.

/// Whether `pattern` matches all of `text` (anchored, `*`/`?` wildcards).
///
/// Iterative two-pointer matcher with star backtracking: linear in
/// `pattern.len() * text.len()` worst case, no recursion, no allocation
/// beyond the two char vectors.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let pattern: Vec<char> = pattern.chars().collect();
    let text: Vec<char> = text.chars().collect();
    let (mut p, mut t) = (0usize, 0usize);
    // Position of the most recent `*` in the pattern, and the text position
    // its current (shortest-so-far) expansion ends at.
    let mut star: Option<(usize, usize)> = None;
    while t < text.len() {
        match pattern.get(p) {
            Some('*') => {
                // Tentatively match the empty run; remember where to widen.
                star = Some((p, t));
                p += 1;
            }
            Some(&pc) if pc == '?' || pc == text[t] => {
                p += 1;
                t += 1;
            }
            _ => match star {
                // Widen the last `*` by one more character and retry.
                Some((sp, st)) => {
                    p = sp + 1;
                    t = st + 1;
                    star = Some((sp, st + 1));
                }
                None => return false,
            },
        }
    }
    // Text exhausted: the rest of the pattern must be all `*`.
    pattern[p..].iter().all(|&c| c == '*')
}

/// Whether `pattern` contains no wildcard characters — i.e. it selects at
/// most one id, by literal equality.  The plan compiler uses this to lower
/// literal selectors to direct catalog lookups.
pub fn is_literal(pattern: &str) -> bool {
    !pattern.contains(['*', '?'])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_patterns_are_anchored_equality() {
        assert!(glob_match("acme", "acme"));
        assert!(!glob_match("acme", "acme2"));
        assert!(!glob_match("acme", "ACME"));
        assert!(!glob_match("cme", "acme"));
        assert!(glob_match("", ""));
        assert!(!glob_match("", "a"));
    }

    #[test]
    fn star_matches_any_run_including_empty() {
        assert!(glob_match("*", ""));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("tenant-*", "tenant-0"));
        assert!(glob_match("tenant-*", "tenant-"));
        assert!(!glob_match("tenant-*", "tenant"));
        assert!(glob_match("*-events", "prod-events"));
        assert!(glob_match("a*b*c", "a__b__c"));
        assert!(glob_match("a*b*c", "abc"));
        assert!(!glob_match("a*b*c", "acb"));
    }

    #[test]
    fn question_mark_consumes_exactly_one_char() {
        assert!(glob_match("t?", "t0"));
        assert!(!glob_match("t?", "t"));
        assert!(!glob_match("t?", "t00"));
        assert!(glob_match("??", "ab"));
    }

    #[test]
    fn unicode_ids_match_per_scalar() {
        assert!(glob_match("caf?", "café"));
        assert!(glob_match("caf*", "café au lait"));
        assert!(glob_match("?afé", "café"));
        assert!(!glob_match("caf??", "café"));
        assert!(glob_match("*é*", "café"));
    }

    #[test]
    fn star_backtracking_widens_past_false_matches() {
        // The first candidate stop for `*` is wrong; the matcher must widen.
        assert!(glob_match("*ab", "aab"));
        assert!(glob_match("*aab", "aaab"));
        assert!(glob_match("a*a", "aa"));
        assert!(!glob_match("a*a", "a"));
        assert!(glob_match("**a", "a"));
    }

    #[test]
    fn literal_detection() {
        assert!(is_literal("tenant-0"));
        assert!(is_literal(""));
        assert!(!is_literal("tenant-*"));
        assert!(!is_literal("t?"));
    }
}
