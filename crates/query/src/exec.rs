//! Plan execution against catalog snapshots.
//!
//! The executor resolves a plan's selector to immutable sketch snapshots,
//! fuses them with the deterministic merge tree when the plan coalesces,
//! runs the extract request on the fused sketch, and reports exactly which
//! `(tenant, dataset, version, freshness)` tuples answered — the provenance
//! a byte-for-byte verifier needs to replay the plan offline against the
//! same versions.

use crate::plan::{QueryPlan, Selector};
use crate::QueryError;
use opaq_core::{OpaqError, QuantileSketch};
use opaq_metrics::trace::{SpanTag, Stage, TraceId, TraceSink};
use opaq_metrics::{PlanStage, StageLatency};
use opaq_serve::{
    execute_on, DatasetId, Freshness, QueryOutput, SketchCatalog, SnapshotOrigin, TenantId,
};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// One catalog entry that contributed to a plan answer.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSource {
    /// The contributing tenant.
    pub tenant: TenantId,
    /// The contributing dataset.
    pub dataset: DatasetId,
    /// The published version (epoch) of the snapshot used.
    pub version: u64,
    /// TTL status of that snapshot at fetch time.
    pub freshness: Freshness,
}

/// A successful plan execution: the estimates plus full provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanResponse {
    /// The computed estimates.
    pub output: QueryOutput,
    /// Total elements summarised by the (possibly fused) answering sketch.
    pub total_elements: u64,
    /// Every snapshot that contributed, in the catalog's sorted key order.
    /// Degenerate single-target plans have exactly one source, which is how
    /// the legacy per-`(tenant, dataset)` response shape is reconstructed.
    pub sources: Vec<PlanSource>,
}

/// One sketch gathered from a peer replica group by a scatter hook.
///
/// Remote partials carry the peer's published version so provenance (and
/// the byte-for-byte verifier's replay) stays exact across the fleet.  They
/// report [`Freshness::Fresh`]: the sync endpoint serves the current
/// published epoch, and partitioned catalogs run TTL-free, so this is what
/// an unpartitioned catalog would report for the same entry — the invariant
/// that keeps scatter-gathered plan answers byte-identical.
#[derive(Debug, Clone)]
pub struct RemotePartial {
    /// The owning tenant (as placed by the ring).
    pub tenant: TenantId,
    /// The dataset.
    pub dataset: DatasetId,
    /// The peer's published version of the entry.
    pub version: u64,
    /// The peer's published sketch.
    pub sketch: Arc<QuantileSketch<u64>>,
}

/// A scatter hook: resolve a glob selector against every peer replica
/// group and return the matching partial sketches.  The optional trace id
/// is the in-flight request's, so cross-group hops carry the same trace.
pub type ScatterFn =
    dyn Fn(&Selector, Option<TraceId>) -> Result<Vec<RemotePartial>, QueryError> + Send + Sync;

/// How a resolved plan source reached this executor.
enum Provenance {
    /// Resolved from the local catalog.
    Local {
        origin: SnapshotOrigin,
        refresh_triggered: bool,
    },
    /// Gathered from a peer group by the scatter hook.
    Remote,
}

/// A selector match with everything downstream stages need, whether it came
/// from the local catalog or a peer group.
struct ResolvedSource {
    tenant: TenantId,
    dataset: DatasetId,
    version: u64,
    freshness: Freshness,
    sketch: Arc<QuantileSketch<u64>>,
    provenance: Provenance,
}

/// Fuse sketches with the same balanced pairwise tree `ShardedOpaq` uses
/// for shard results: adjacent pairs per round, ascending order, odd one
/// carries over.  Deterministic — the same input order always produces the
/// same fused sketch, which is what makes plan answers byte-replayable.
///
/// # Errors
/// [`OpaqError::EmptyDataset`] for an empty slice; merge errors (e.g.
/// incompatible sample sizes) propagate from [`QuantileSketch::merge`].
pub fn merge_tree(
    sketches: &[Arc<QuantileSketch<u64>>],
) -> Result<Arc<QuantileSketch<u64>>, OpaqError> {
    if sketches.is_empty() {
        return Err(OpaqError::EmptyDataset);
    }
    if sketches.len() == 1 {
        return Ok(Arc::clone(&sketches[0]));
    }
    let mut round: Vec<Arc<QuantileSketch<u64>>> = sketches.to_vec();
    while round.len() > 1 {
        let mut next = Vec::with_capacity(round.len().div_ceil(2));
        let mut pairs = round.chunks_exact(2);
        for pair in &mut pairs {
            next.push(Arc::new(pair[0].merge(&pair[1])?));
        }
        if let [odd] = pairs.remainder() {
            next.push(Arc::clone(odd));
        }
        round = next;
    }
    Ok(round.pop().expect("non-empty round"))
}

/// Executes [`QueryPlan`]s against a catalog, recording per-stage latency.
///
/// All methods take `&self`; share one executor behind an `Arc` across
/// serving threads.  Snapshots are resolved through the catalog's usual
/// epoch discipline, so a plan over N entries reads N *complete* published
/// versions — never a torn mixture — and reports each one it used.
///
/// On a ring-partitioned fleet the local catalog holds only owned tenants;
/// installing a scatter hook ([`PlanExecutor::with_scatter`]) lets glob
/// plans gather the missing partials from peer groups and fuse the union
/// with the same deterministic [`merge_tree`], so a multi-group `coalesce`
/// answer is byte-identical to the same plan on an unpartitioned catalog.
pub struct PlanExecutor {
    catalog: Arc<SketchCatalog>,
    stages: StageLatency,
    scatter: Option<Arc<ScatterFn>>,
}

impl fmt::Debug for PlanExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanExecutor")
            .field("catalog", &self.catalog)
            .field("stages", &self.stages)
            .field("scatter", &self.scatter.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

impl PlanExecutor {
    /// Create an executor over `catalog`.
    pub fn new(catalog: Arc<SketchCatalog>) -> Self {
        Self {
            catalog,
            stages: StageLatency::new(),
            scatter: None,
        }
    }

    /// Install a scatter hook for cross-group glob resolution.
    #[must_use]
    pub fn with_scatter(mut self, scatter: Arc<ScatterFn>) -> Self {
        self.scatter = Some(scatter);
        self
    }

    /// The catalog plans resolve against.
    pub fn catalog(&self) -> &Arc<SketchCatalog> {
        &self.catalog
    }

    /// Per-stage latency histograms (fetch / scatter / merge / extract).
    pub fn stages(&self) -> &StageLatency {
        &self.stages
    }

    /// Execute one plan.
    ///
    /// # Errors
    /// * [`QueryError::NoMatch`] — a glob selector matched nothing;
    /// * [`QueryError::Serve`] with `ServeError::UnknownEntry` — an exact
    ///   selector addressed an entry that was never published;
    /// * [`QueryError::NeedsCoalesce`] — the selector resolved several
    ///   entries but the plan has no coalesce stage;
    /// * [`QueryError::Serve`] — snapshot reload, merge or estimation
    ///   failures.
    pub fn execute(&self, plan: &QueryPlan) -> Result<PlanResponse, QueryError> {
        self.execute_inner(plan, None)
    }

    /// Execute one plan, recording spans on `sink` under `parent`: a
    /// [`Stage::Fetch`] span with one [`Stage::Snapshot`] child per resolved
    /// source (tagged from the snapshot's origin, or
    /// [`SpanTag::RefreshTriggered`] when this fetch kicked off a TTL
    /// refresh), a [`Stage::Merge`] span when more than one snapshot fuses,
    /// and a [`Stage::Extract`] span.  Latency histograms record exactly as
    /// in [`PlanExecutor::execute`].
    ///
    /// # Errors
    /// Identical to [`PlanExecutor::execute`].
    pub fn execute_traced(
        &self,
        plan: &QueryPlan,
        sink: &TraceSink,
        parent: u32,
    ) -> Result<PlanResponse, QueryError> {
        self.execute_inner(plan, Some((sink, parent)))
    }

    fn execute_inner(
        &self,
        plan: &QueryPlan,
        trace: Option<(&TraceSink, u32)>,
    ) -> Result<PlanResponse, QueryError> {
        let fetch_start = Instant::now();
        let fetch_span = trace.map(|(sink, _)| (sink.allocate(), sink.now_nanos()));
        let mut snapshots = self.fetch(&plan.selector)?;
        if let (Some((sink, parent)), Some((fetch_id, start))) = (trace, fetch_span) {
            // One child per local source, nested under the fetch span, tagged
            // with how the catalog produced the snapshot.  Remote partials
            // are accounted to the scatter span instead.
            for source in &snapshots {
                let Provenance::Local {
                    origin,
                    refresh_triggered,
                } = source.provenance
                else {
                    continue;
                };
                let tag = if refresh_triggered {
                    SpanTag::RefreshTriggered
                } else {
                    match origin {
                        SnapshotOrigin::Hit => SpanTag::Hit,
                        SnapshotOrigin::ReloadFromSpill => SpanTag::ReloadFromSpill,
                    }
                };
                sink.complete(sink.allocate(), fetch_id, Stage::Snapshot, tag, start);
            }
            sink.complete(fetch_id, parent, Stage::Fetch, SpanTag::Untagged, start);
        }
        self.stages.record(PlanStage::Fetch, fetch_start.elapsed());

        if let (Selector::Glob { .. }, Some(scatter)) = (&plan.selector, self.scatter.as_ref()) {
            let scatter_start = Instant::now();
            let scatter_span = trace.map(|(sink, _)| sink.now_nanos());
            let remote = scatter(&plan.selector, trace.map(|(sink, _)| sink.trace()))?;
            snapshots = Self::fuse_partials(snapshots, remote);
            if let (Some((sink, parent)), Some(start)) = (trace, scatter_span) {
                sink.child(parent, Stage::Scatter, SpanTag::Untagged, start);
            }
            self.stages
                .record(PlanStage::Scatter, scatter_start.elapsed());
        }
        if snapshots.is_empty() {
            // Only a scatter-enabled glob can get here: local-only fetch
            // already raised NoMatch, and an exact fetch resolved one entry.
            let Selector::Glob { tenant, dataset } = &plan.selector else {
                unreachable!("empty resolution is glob-only")
            };
            return Err(QueryError::NoMatch {
                tenant: tenant.clone(),
                dataset: dataset.clone(),
            });
        }

        if snapshots.len() > 1 && !plan.coalesce {
            return Err(QueryError::NeedsCoalesce {
                matched: snapshots.len(),
            });
        }

        let fused = if snapshots.len() > 1 {
            let merge_start = Instant::now();
            let merge_span = trace.map(|(sink, _)| sink.now_nanos());
            let sketches: Vec<_> = snapshots
                .iter()
                .map(|source| Arc::clone(&source.sketch))
                .collect();
            let fused = merge_tree(&sketches).map_err(opaq_serve::ServeError::from)?;
            if let (Some((sink, parent)), Some(start)) = (trace, merge_span) {
                sink.child(parent, Stage::Merge, SpanTag::Untagged, start);
            }
            self.stages.record(PlanStage::Merge, merge_start.elapsed());
            fused
        } else {
            Arc::clone(&snapshots[0].sketch)
        };

        let extract_start = Instant::now();
        let extract_span = trace.map(|(sink, _)| sink.now_nanos());
        let output = execute_on(&fused, &plan.extract)?;
        if let (Some((sink, parent)), Some(start)) = (trace, extract_span) {
            sink.child(parent, Stage::Extract, SpanTag::Untagged, start);
        }
        self.stages
            .record(PlanStage::Extract, extract_start.elapsed());

        Ok(PlanResponse {
            output,
            total_elements: fused.total_elements(),
            sources: snapshots
                .into_iter()
                .map(|source| PlanSource {
                    tenant: source.tenant,
                    dataset: source.dataset,
                    version: source.version,
                    freshness: source.freshness,
                })
                .collect(),
        })
    }

    /// Union local matches with scatter-gathered partials, then restore the
    /// catalog's sorted key order so merge input order — and therefore the
    /// fused sketch — is exactly what an unpartitioned catalog would use.
    /// A key present on both sides keeps the higher version (the local copy
    /// on a tie), mirroring the catalog's strictly-greater publish rule.
    fn fuse_partials(
        local: Vec<ResolvedSource>,
        remote: Vec<RemotePartial>,
    ) -> Vec<ResolvedSource> {
        let mut union = local;
        for partial in remote {
            let existing = union
                .iter_mut()
                .find(|s| s.tenant == partial.tenant && s.dataset == partial.dataset);
            match existing {
                Some(held) if held.version >= partial.version => {}
                Some(held) => {
                    held.version = partial.version;
                    held.sketch = partial.sketch;
                    held.freshness = Freshness::Fresh;
                    held.provenance = Provenance::Remote;
                }
                None => union.push(ResolvedSource {
                    tenant: partial.tenant,
                    dataset: partial.dataset,
                    version: partial.version,
                    freshness: Freshness::Fresh,
                    sketch: partial.sketch,
                    provenance: Provenance::Remote,
                }),
            }
        }
        union.sort_by(|a, b| {
            (a.tenant.as_str(), a.dataset.as_str()).cmp(&(b.tenant.as_str(), b.dataset.as_str()))
        });
        union
    }

    /// Resolve a selector against the local catalog, in the catalog's
    /// sorted key order.  A glob that matches nothing locally is only an
    /// error when there is no scatter hook to consult peer groups.
    fn fetch(&self, selector: &Selector) -> Result<Vec<ResolvedSource>, QueryError> {
        let resolved_source = |tenant: &TenantId, dataset: &DatasetId| {
            self.catalog
                .snapshot(tenant, dataset)
                .map(|snap| ResolvedSource {
                    tenant: tenant.clone(),
                    dataset: dataset.clone(),
                    version: snap.version,
                    freshness: snap.freshness,
                    provenance: Provenance::Local {
                        origin: snap.origin,
                        refresh_triggered: snap.refresh_triggered,
                    },
                    sketch: snap.sketch,
                })
        };
        match selector {
            Selector::Exact { tenant, dataset } => Ok(vec![resolved_source(tenant, dataset)?]),
            Selector::Glob { .. } => {
                let mut resolved = Vec::new();
                for (tenant, dataset) in self.catalog.keys() {
                    if selector.matches(&tenant, &dataset) {
                        resolved.push(resolved_source(&tenant, &dataset)?);
                    }
                }
                if resolved.is_empty() && self.scatter.is_none() {
                    let Selector::Glob { tenant, dataset } = selector else {
                        unreachable!("outer match")
                    };
                    return Err(QueryError::NoMatch {
                        tenant: tenant.clone(),
                        dataset: dataset.clone(),
                    });
                }
                Ok(resolved)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opaq_core::{IncrementalOpaq, OpaqConfig};
    use opaq_serve::{QueryRequest, ServeError};

    fn sketch_of(range: std::ops::Range<u64>) -> QuantileSketch<u64> {
        let config = OpaqConfig::builder()
            .run_length(500)
            .sample_size(50)
            .build()
            .unwrap();
        let mut inc = IncrementalOpaq::new(config).unwrap();
        inc.add_run(range.collect()).unwrap();
        inc.into_sketch().unwrap()
    }

    fn catalog_with(tenants: &[(&str, &str, std::ops::Range<u64>)]) -> Arc<SketchCatalog> {
        let catalog = Arc::new(SketchCatalog::unbounded());
        for (t, d, range) in tenants {
            catalog
                .publish(
                    &TenantId::from(*t),
                    &DatasetId::from(*d),
                    sketch_of(range.clone()),
                )
                .unwrap();
        }
        catalog
    }

    #[test]
    fn merge_tree_matches_manual_pairwise_merge() {
        let a = Arc::new(sketch_of(0..1000));
        let b = Arc::new(sketch_of(1000..2000));
        let c = Arc::new(sketch_of(2000..3000));
        // Three inputs: ((a+b) + c), with c carried over the first round.
        let manual = Arc::new(a.merge(&b).unwrap().merge(&c).unwrap());
        let fused = merge_tree(&[a, b, c]).unwrap();
        assert_eq!(*fused, *manual);
        assert_eq!(fused.total_elements(), 3000);
    }

    #[test]
    fn merge_tree_edge_cases() {
        assert!(matches!(merge_tree(&[]), Err(OpaqError::EmptyDataset)));
        let only = Arc::new(sketch_of(0..100));
        let fused = merge_tree(std::slice::from_ref(&only)).unwrap();
        assert!(Arc::ptr_eq(&fused, &only), "single input is not copied");
    }

    #[test]
    fn glob_plan_fuses_and_reports_every_source() {
        let catalog = catalog_with(&[
            ("tenant-0", "events", 0..1000),
            ("tenant-1", "events", 1000..2000),
            ("ttl-probe", "events", 0..10),
        ]);
        let executor = PlanExecutor::new(Arc::clone(&catalog));
        let plan = QueryPlan::parse("fetch tenant-*/events | coalesce | quantile 0.5").unwrap();
        let response = executor.execute(&plan).unwrap();
        assert_eq!(response.total_elements, 2000);
        assert_eq!(response.sources.len(), 2);
        assert_eq!(response.sources[0].tenant.as_str(), "tenant-0");
        assert_eq!(response.sources[1].tenant.as_str(), "tenant-1");
        assert!(response
            .sources
            .iter()
            .all(|s| s.version == 1 && s.freshness == Freshness::Fresh));
        // Byte-replayable: the same merge offline gives the same output.
        let offline = merge_tree(&[
            catalog
                .snapshot(&TenantId::from("tenant-0"), &DatasetId::from("events"))
                .unwrap()
                .sketch,
            catalog
                .snapshot(&TenantId::from("tenant-1"), &DatasetId::from("events"))
                .unwrap()
                .sketch,
        ])
        .unwrap();
        assert_eq!(
            response.output,
            execute_on(&offline, &plan.extract).unwrap()
        );
        // Stage attribution: fetch and extract always record, merge did too.
        let stages = executor.stages();
        assert_eq!(stages.histogram(PlanStage::Fetch).count(), 1);
        assert_eq!(stages.histogram(PlanStage::Merge).count(), 1);
        assert_eq!(stages.histogram(PlanStage::Extract).count(), 1);
    }

    #[test]
    fn single_target_plan_skips_the_merge_stage() {
        let catalog = catalog_with(&[("acme", "events", 0..500)]);
        let executor = PlanExecutor::new(catalog);
        let plan = QueryPlan::single(
            TenantId::from("acme"),
            DatasetId::from("events"),
            QueryRequest::Rank { key: 250 },
        );
        let response = executor.execute(&plan).unwrap();
        assert_eq!(response.sources.len(), 1);
        assert_eq!(response.total_elements, 500);
        assert_eq!(executor.stages().histogram(PlanStage::Merge).count(), 0);
        assert_eq!(executor.stages().histogram(PlanStage::Fetch).count(), 1);
    }

    #[test]
    fn multi_source_without_coalesce_is_a_typed_error() {
        let catalog = catalog_with(&[("a", "events", 0..100), ("b", "events", 0..100)]);
        let executor = PlanExecutor::new(catalog);
        let plan = QueryPlan::parse("fetch */events | quantile 0.5").unwrap();
        match executor.execute(&plan) {
            Err(QueryError::NeedsCoalesce { matched }) => assert_eq!(matched, 2),
            other => panic!("expected NeedsCoalesce, got {other:?}"),
        }
    }

    #[test]
    fn unmatched_glob_and_unknown_exact_are_distinct_errors() {
        let catalog = catalog_with(&[("a", "events", 0..100)]);
        let executor = PlanExecutor::new(catalog);
        let glob = QueryPlan::parse("fetch ghost-*/events | coalesce | quantile 0.5").unwrap();
        assert!(matches!(
            executor.execute(&glob),
            Err(QueryError::NoMatch { .. })
        ));
        let exact = QueryPlan::parse("fetch ghost/events | quantile 0.5").unwrap();
        assert!(matches!(
            executor.execute(&exact),
            Err(QueryError::Serve(ServeError::UnknownEntry { .. }))
        ));
    }

    #[test]
    fn estimation_errors_propagate_as_serve_errors() {
        let catalog = catalog_with(&[("a", "events", 0..100)]);
        let executor = PlanExecutor::new(catalog);
        let plan = QueryPlan::parse("fetch a/events | quantile 1.5").unwrap();
        assert!(matches!(executor.execute(&plan), Err(QueryError::Serve(_))));
    }

    #[test]
    fn traced_plan_records_fetch_snapshot_merge_and_extract_spans() {
        use opaq_metrics::trace::{SpanRecorder, TraceId, ROOT_SPAN_ID};

        let catalog = catalog_with(&[("a", "events", 0..500), ("b", "events", 500..1000)]);
        let executor = PlanExecutor::new(catalog);
        let plan = QueryPlan::parse("fetch */events | coalesce | quantile 0.5").unwrap();
        let recorder = Arc::new(SpanRecorder::new(64));
        let sink = TraceSink::new(Arc::clone(&recorder), TraceId::mint());
        executor.execute_traced(&plan, &sink, ROOT_SPAN_ID).unwrap();
        sink.finish_root(Stage::Request, SpanTag::Untagged);

        let spans = recorder.trace(sink.trace());
        let of = |stage: Stage| {
            spans
                .iter()
                .filter(|s| s.stage == stage)
                .collect::<Vec<_>>()
        };
        let fetch = of(Stage::Fetch);
        assert_eq!(fetch.len(), 1);
        assert_eq!(fetch[0].parent, ROOT_SPAN_ID);
        let snapshots = of(Stage::Snapshot);
        assert_eq!(snapshots.len(), 2, "one snapshot child per source");
        assert!(snapshots.iter().all(|s| s.parent == fetch[0].span_id));
        assert!(snapshots.iter().all(|s| s.tag == SpanTag::Hit));
        assert_eq!(of(Stage::Merge).len(), 1);
        assert_eq!(of(Stage::Extract).len(), 1);
        assert_eq!(of(Stage::Request).len(), 1, "root span present");
    }

    /// A hook resolving against another catalog, as the server's
    /// cross-group hook does over HTTP.
    fn scatter_from(catalog: Arc<SketchCatalog>) -> Arc<ScatterFn> {
        Arc::new(move |selector: &Selector, _trace| {
            let mut partials = Vec::new();
            for (tenant, dataset) in catalog.keys() {
                if selector.matches(&tenant, &dataset) {
                    let snap = catalog.snapshot(&tenant, &dataset).unwrap();
                    partials.push(RemotePartial {
                        tenant,
                        dataset,
                        version: snap.version,
                        sketch: snap.sketch,
                    });
                }
            }
            Ok(partials)
        })
    }

    #[test]
    fn scatter_gathered_plan_matches_unpartitioned_catalog() {
        // Partition three tenants across two catalogs; the oracle holds all
        // three.  tenant-1 deliberately lands remotely so the union has to
        // interleave local and remote sources to restore key order.
        let local = catalog_with(&[("tenant-0", "events", 0..1000)]);
        let peer = catalog_with(&[
            ("tenant-1", "events", 1000..2000),
            ("tenant-2", "events", 2000..3000),
        ]);
        let oracle = catalog_with(&[
            ("tenant-0", "events", 0..1000),
            ("tenant-1", "events", 1000..2000),
            ("tenant-2", "events", 2000..3000),
        ]);
        let executor = PlanExecutor::new(local).with_scatter(scatter_from(peer));
        let plan = QueryPlan::parse("fetch tenant-*/events | coalesce | quantile 0.5").unwrap();
        let gathered = executor.execute(&plan).unwrap();
        let reference = PlanExecutor::new(oracle).execute(&plan).unwrap();
        assert_eq!(gathered, reference, "scatter-gather must be transparent");
        assert_eq!(gathered.sources.len(), 3);
        assert_eq!(executor.stages().histogram(PlanStage::Scatter).count(), 1);
    }

    #[test]
    fn scatter_covers_globs_with_no_local_match() {
        let local = catalog_with(&[("other", "events", 0..100)]);
        let peer = catalog_with(&[("tenant-0", "events", 0..500)]);
        let executor = PlanExecutor::new(local).with_scatter(scatter_from(peer));
        let plan = QueryPlan::parse("fetch tenant-*/events | coalesce | rank 250").unwrap();
        let response = executor.execute(&plan).unwrap();
        assert_eq!(response.sources.len(), 1);
        assert_eq!(response.sources[0].tenant.as_str(), "tenant-0");
        // A glob nobody matches is still NoMatch, even with a hook.
        let ghost = QueryPlan::parse("fetch ghost-*/events | coalesce | rank 1").unwrap();
        assert!(matches!(
            executor.execute(&ghost),
            Err(QueryError::NoMatch { .. })
        ));
    }

    #[test]
    fn scatter_prefers_the_higher_version_per_key() {
        let local = catalog_with(&[("dup", "events", 0..100)]);
        let peer = catalog_with(&[("dup", "events", 0..100)]);
        peer_publish(&peer, "dup", "events", 100..300);
        let executor =
            PlanExecutor::new(Arc::clone(&local)).with_scatter(scatter_from(Arc::clone(&peer)));
        let plan = QueryPlan::parse("fetch dup/* | coalesce | quantile 0.5").unwrap();
        let response = executor.execute(&plan).unwrap();
        assert_eq!(response.sources.len(), 1, "same key is deduplicated");
        assert_eq!(response.sources[0].version, 2, "higher version wins");
        assert_eq!(response.total_elements, 200);
        // Tie goes to the local copy: republish locally to version 2.
        peer_publish(&local, "dup", "events", 100..300);
        let tied = executor.execute(&plan).unwrap();
        assert_eq!(tied.sources[0].version, 2);
    }

    fn peer_publish(catalog: &SketchCatalog, tenant: &str, dataset: &str, r: std::ops::Range<u64>) {
        catalog
            .publish(
                &TenantId::from(tenant),
                &DatasetId::from(dataset),
                sketch_of(r),
            )
            .unwrap();
    }

    #[test]
    fn scatter_errors_propagate() {
        let local = catalog_with(&[("a", "events", 0..100)]);
        let executor = PlanExecutor::new(local).with_scatter(Arc::new(|_: &Selector, _| {
            Err(QueryError::Serve(ServeError::Opaq(OpaqError::EmptyDataset)))
        }));
        let plan = QueryPlan::parse("fetch */events | coalesce | quantile 0.5").unwrap();
        assert!(matches!(executor.execute(&plan), Err(QueryError::Serve(_))));
        // Exact plans never scatter, so the failing hook is not consulted.
        let exact = QueryPlan::parse("fetch a/events | quantile 0.5").unwrap();
        assert!(executor.execute(&exact).is_ok());
    }

    #[test]
    fn coalescing_one_source_is_harmless() {
        let catalog = catalog_with(&[("a", "events", 0..100)]);
        let executor = PlanExecutor::new(catalog);
        let plan = QueryPlan::parse("fetch a/* | coalesce | quantile 0.5").unwrap();
        let response = executor.execute(&plan).unwrap();
        assert_eq!(response.sources.len(), 1);
        assert_eq!(executor.stages().histogram(PlanStage::Merge).count(), 0);
    }
}
