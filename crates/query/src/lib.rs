//! # opaq-query — a composable query pipeline over the sketch catalog
//!
//! The serving layer answers point queries against one `(tenant, dataset)`
//! entry.  This crate layers a small operator algebra on top: a plan
//! *fetches* a set of catalog entries by glob, optionally *coalesces* them
//! with the deterministic sketch merge tree, and *extracts* quantiles,
//! ranks or equi-depth profiles from the fused sketch — all against
//! immutable published snapshots, so a plan over N entries reads N complete
//! versions and reports exactly which ones answered.
//!
//! ## Grammar reference
//!
//! A plan is one to three `|`-separated stages:
//!
//! ```text
//! plan     := fetch [ "|" coalesce ] "|" extract
//! fetch    := "fetch" SELECTOR
//! coalesce := "coalesce" | "merge"            (no arguments)
//! extract  := "quantile" PHI ("," PHI)*       (one φ → scalar estimate,
//!           | "rank" KEY                       several → consistent batch)
//!           | "profile" COUNT
//! SELECTOR := TENANT-PATTERN [ "/" DATASET-PATTERN ]
//! ```
//!
//! * Patterns support `*` (any run of characters, including empty) and `?`
//!   (exactly one character), matched per Unicode scalar and anchored at
//!   both ends — see [`glob_match`].  A selector without `/` means "every
//!   dataset of the matched tenants" (`fetch acme` ≡ `fetch acme/*`).
//! * A selector with no wildcard characters compiles to an exact catalog
//!   lookup ([`Selector::Exact`]); unknown entries surface the same typed
//!   `UnknownEntry` error as the point-query API.
//! * A plan whose selector resolves **more than one** entry must contain a
//!   `coalesce` stage, or execution fails with
//!   [`QueryError::NeedsCoalesce`] — fusing sketches changes the answer's
//!   meaning, so it never happens implicitly.
//! * `PHI` is any finite float (range checking happens at estimation, so
//!   `quantile 1.5` parses and then fails exactly like `?phi=1.5` on the
//!   HTTP API); `KEY` and `COUNT` are unsigned integers.
//!
//! ### Examples
//!
//! ```text
//! fetch acme/events | quantile 0.5
//! fetch tenant-*/events | coalesce | quantile 0.25,0.5,0.99
//! fetch acme | merge | profile 10
//! fetch */clickstream-? | coalesce | rank 100000
//! ```
//!
//! ## Execution and provenance
//!
//! [`QueryPlan::parse`] compiles the text to a typed [`QueryPlan`];
//! [`PlanExecutor::execute`] resolves the selector against a
//! [`opaq_serve::SketchCatalog`] (sorted key order, so merge input order is
//! deterministic), fuses with [`merge_tree`] — the same balanced pairwise
//! tree `opaq-parallel` uses for shard results — and runs the extract via
//! the single shared evaluation path [`opaq_serve::execute_on`].  The
//! [`PlanResponse`] carries a [`PlanSource`] per contributing snapshot
//! (`tenant`, `dataset`, `version`, `freshness`), which is what lets the
//! HTTP workload verifier replay a plan answer byte-for-byte against an
//! offline merge of the very same sketch versions.
//!
//! Per-stage latency (fetch / merge / extract) is recorded into
//! [`opaq_metrics::StageLatency`] histograms, exposed through the server's
//! `/metrics` endpoint.
//!
//! The legacy single-target requests are degenerate plans
//! ([`QueryPlan::single`]): one exact fetch, no coalesce, one extract —
//! which is how the HTTP GET routes and the CLI share this executor while
//! keeping their response bytes unchanged.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod exec;
pub mod glob;
pub mod parser;
pub mod plan;

pub use exec::{merge_tree, PlanExecutor, PlanResponse, PlanSource, RemotePartial, ScatterFn};
pub use glob::glob_match;
pub use plan::{QueryPlan, Selector};

use opaq_core::OpaqError;
use opaq_serve::ServeError;
use std::fmt;

/// Errors surfaced by plan parsing and execution.
#[derive(Debug)]
pub enum QueryError {
    /// The pipeline expression does not follow the grammar.
    Parse {
        /// What was wrong.
        message: String,
        /// The 1-based stage the error was detected in.
        stage: usize,
    },
    /// A glob selector matched no published catalog entry.
    NoMatch {
        /// The tenant pattern that failed to match.
        tenant: String,
        /// The dataset pattern that failed to match.
        dataset: String,
    },
    /// The selector resolved several entries but the plan does not coalesce.
    NeedsCoalesce {
        /// How many entries matched.
        matched: usize,
    },
    /// The serving layer failed (unknown entry, reload, merge, estimation).
    Serve(ServeError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse { message, stage } => {
                write!(f, "plan stage {stage}: {message}")
            }
            QueryError::NoMatch { tenant, dataset } => {
                write!(f, "no catalog entry matches '{tenant}/{dataset}'")
            }
            QueryError::NeedsCoalesce { matched } => {
                write!(
                    f,
                    "selector matched {matched} entries; add '| coalesce' to fuse them"
                )
            }
            QueryError::Serve(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for QueryError {
    fn from(e: ServeError) -> Self {
        QueryError::Serve(e)
    }
}

impl From<OpaqError> for QueryError {
    fn from(e: OpaqError) -> Self {
        QueryError::Serve(ServeError::Opaq(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_actionable() {
        let parse = QueryPlan::parse("nope").unwrap_err();
        assert!(parse.to_string().starts_with("plan stage 1:"), "{parse}");
        let no_match = QueryError::NoMatch {
            tenant: "ghost-*".into(),
            dataset: "events".into(),
        };
        assert!(no_match.to_string().contains("ghost-*/events"));
        let needs = QueryError::NeedsCoalesce { matched: 3 };
        assert!(needs.to_string().contains("coalesce"));
    }
}
