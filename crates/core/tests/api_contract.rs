//! API-contract tests: behaviours a downstream user relies on that are not
//! covered by the lemma property tests — determinism, strategy independence,
//! duplicate handling at the bound values, and memory accounting.

use opaq_core::{OpaqConfig, OpaqEstimator, TheoreticalBounds};
use opaq_select::SelectionStrategy;
use opaq_storage::MemRunStore;

fn data(n: u64, seed: u64) -> Vec<u64> {
    (0..n)
        .map(|i| (i.wrapping_mul(6364136223846793005).wrapping_add(seed)) >> 33)
        .collect()
}

#[test]
fn sketch_is_deterministic_for_a_given_input() {
    let keys = data(30_000, 7);
    let config = OpaqConfig::builder()
        .run_length(3_000)
        .sample_size(300)
        .build()
        .unwrap();
    let build = || {
        OpaqEstimator::new(config)
            .build_sketch(&MemRunStore::new(keys.clone(), 3_000))
            .unwrap()
    };
    let a = build();
    let b = build();
    assert_eq!(a, b, "two builds over the same input must be identical");
}

#[test]
fn selection_strategy_does_not_change_the_sketch() {
    let keys = data(20_000, 1);
    let sketches: Vec<_> = SelectionStrategy::ALL
        .into_iter()
        .map(|strategy| {
            let config = OpaqConfig::builder()
                .run_length(2_000)
                .sample_size(200)
                .strategy(strategy)
                .build()
                .unwrap();
            OpaqEstimator::new(config)
                .build_sketch(&MemRunStore::new(keys.clone(), 2_000))
                .unwrap()
        })
        .collect();
    // The selected order statistics are unique values, so every strategy must
    // produce exactly the same sample list.
    let reference: Vec<u64> = sketches[0].samples().iter().map(|s| s.value).collect();
    for sketch in &sketches[1..] {
        let values: Vec<u64> = sketch.samples().iter().map(|s| s.value).collect();
        assert_eq!(values, reference);
    }
}

#[test]
fn all_duplicate_dataset_collapses_bounds_to_the_single_value() {
    let keys = vec![42u64; 10_000];
    let config = OpaqConfig::builder()
        .run_length(1_000)
        .sample_size(50)
        .build()
        .unwrap();
    let sketch = OpaqEstimator::new(config)
        .build_sketch(&MemRunStore::new(keys, 1_000))
        .unwrap();
    for i in 1..10 {
        let est = sketch.estimate(i as f64 / 10.0).unwrap();
        assert_eq!(est.lower, 42);
        assert_eq!(est.upper, 42);
    }
    assert_eq!(sketch.dataset_min(), 42);
    assert_eq!(sketch.dataset_max(), 42);
}

#[test]
fn memory_accounting_matches_the_paper_constraint() {
    // r*s sample points plus one run of m elements is the working set the
    // paper's `rs + m <= M` constraint describes.
    let n = 1_000_000u64;
    let config = OpaqConfig::for_memory_budget(n, 250_000, 10).unwrap();
    let keys = data(n / 100, 3); // smaller data, same structure check
    let store = MemRunStore::new(keys, config.run_length);
    let sketch = OpaqEstimator::new(config).build_sketch(&store).unwrap();
    assert!(
        (sketch.memory_sample_points() as u64) + config.run_length <= 250_000 + config.run_length,
        "working set must respect the budget"
    );
    // The theoretical bounds must be computable and consistent.
    let bounds = TheoreticalBounds::new(&config, n, 10);
    assert!(bounds.max_elements_per_bound <= TheoreticalBounds::n_over_s(n, config.sample_size));
}

#[test]
fn sample_size_equal_to_run_length_gives_exact_answers() {
    let keys = data(5_000, 11);
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    let config = OpaqConfig::builder()
        .run_length(500)
        .sample_size(500)
        .build()
        .unwrap();
    let sketch = OpaqEstimator::new(config)
        .build_sketch(&MemRunStore::new(keys, 500))
        .unwrap();
    // Every element is a sample, so lower == upper == the exact value.
    for i in 1..10 {
        let est = sketch.estimate(i as f64 / 10.0).unwrap();
        let truth = sorted[(est.target_rank - 1) as usize];
        assert_eq!(est.lower, truth);
        assert_eq!(est.upper, truth);
    }
}

#[test]
fn tiny_datasets_smaller_than_one_run_work() {
    let keys = vec![5u64, 1, 9, 3, 7];
    let config = OpaqConfig::builder()
        .run_length(100)
        .sample_size(10)
        .build()
        .unwrap();
    let sketch = OpaqEstimator::new(config)
        .build_sketch(&MemRunStore::new(keys, 100))
        .unwrap();
    let est = sketch.estimate(0.5).unwrap();
    assert_eq!(
        (est.lower, est.upper),
        (5, 5),
        "median of 1,3,5,7,9 is exact here"
    );
}
