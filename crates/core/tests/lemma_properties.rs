//! Property-based tests of the paper's lemmas.
//!
//! These are the library's crown-jewel invariants: for *any* data
//! distribution, run structure and sample size,
//!
//! * Lemma 1 — at most `n/s`-ish elements lie between the true quantile and
//!   the lower bound,
//! * Lemma 2 — the same for the upper bound,
//! * Lemma 3 — at most twice that between the two bounds,
//! * and (the definition of a bound) `e_l ≤ Q_φ ≤ e_u`.

use opaq_core::{OpaqConfig, OpaqEstimator};
use opaq_storage::MemRunStore;
use proptest::prelude::*;

/// Check every dectile of `data` for the enclosure and slack properties.
fn check_lemmas(data: Vec<u64>, m: u64, s: u64) -> Result<(), TestCaseError> {
    let n = data.len() as u64;
    let mut sorted = data.clone();
    sorted.sort_unstable();
    let store = MemRunStore::new(data, m);
    let config = OpaqConfig::builder()
        .run_length(m)
        .sample_size(s)
        .build()
        .unwrap();
    let sketch = OpaqEstimator::new(config).build_sketch(&store).unwrap();

    let slack = sketch.max_elements_per_bound();
    for i in 1..10u64 {
        let phi = i as f64 / 10.0;
        let est = sketch.estimate(phi).unwrap();
        let psi = est.target_rank;
        let truth = sorted[(psi - 1) as usize];

        // Enclosure.
        prop_assert!(
            est.lower <= truth && truth <= est.upper,
            "phi={phi}: [{:?}, {:?}] misses {truth} (n={n}, m={m}, s={s})",
            est.lower,
            est.upper
        );

        // Lemma 1: elements strictly between lower bound and truth.
        let rank_le = |v: u64| sorted.partition_point(|&x| x <= v) as u64;
        let rank_lt = |v: u64| sorted.partition_point(|&x| x < v) as u64;
        let below_gap = psi.saturating_sub(rank_le(est.lower));
        prop_assert!(
            below_gap <= slack,
            "lemma 1 violated: {below_gap} > {slack}"
        );

        // Lemma 2: elements strictly between truth and upper bound.
        let above_gap = rank_lt(est.upper).saturating_sub(psi);
        prop_assert!(
            above_gap <= slack,
            "lemma 2 violated: {above_gap} > {slack}"
        );

        // Lemma 3: elements strictly inside (lower, upper).
        let between = rank_lt(est.upper).saturating_sub(rank_le(est.lower));
        prop_assert!(
            between <= sketch.max_elements_between_bounds(),
            "lemma 3 violated: {between} > {}",
            sketch.max_elements_between_bounds()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lemmas_hold_for_arbitrary_data_and_config(
        data in proptest::collection::vec(any::<u64>(), 100..4000),
        m_divisor in 2u64..20,
        s_choice in 2u64..64,
    ) {
        let n = data.len() as u64;
        let m = (n / m_divisor).max(1);
        let s = s_choice.min(m);
        check_lemmas(data, m, s)?;
    }

    #[test]
    fn lemmas_hold_for_duplicate_heavy_data(
        distinct in 1u64..20,
        len in 200usize..3000,
        m_divisor in 2u64..10,
    ) {
        let data: Vec<u64> = (0..len as u64).map(|i| i % distinct).collect();
        let m = (len as u64 / m_divisor).max(1);
        let s = 8u64.min(m);
        check_lemmas(data, m, s)?;
    }

    #[test]
    fn lemmas_hold_for_sorted_and_reverse_inputs(
        len in 200usize..3000,
        reverse in any::<bool>(),
        m_divisor in 2u64..10,
    ) {
        let mut data: Vec<u64> = (0..len as u64).collect();
        if reverse {
            data.reverse();
        }
        let m = (len as u64 / m_divisor).max(1);
        check_lemmas(data, m, 16u64.min(m))?;
    }

    #[test]
    fn exact_pass_returns_true_order_statistic(
        data in proptest::collection::vec(0u64..10_000, 100..2000),
        phi_percent in 1u64..100,
    ) {
        let phi = phi_percent as f64 / 100.0;
        let n = data.len() as u64;
        let m = (n / 4).max(1);
        let s = 16u64.min(m);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let psi = ((phi * n as f64).ceil() as u64).clamp(1, n);
        let truth = sorted[(psi - 1) as usize];

        let store = MemRunStore::new(data, m);
        let config = OpaqConfig::builder().run_length(m).sample_size(s).build().unwrap();
        let sketch = OpaqEstimator::new(config).build_sketch(&store).unwrap();
        let exact = opaq_core::exact_quantile(&store, &sketch, phi).unwrap();
        prop_assert_eq!(exact.value, truth);
    }

    #[test]
    fn rank_bounds_enclose_true_rank_for_arbitrary_values(
        data in proptest::collection::vec(0u64..5_000, 100..2000),
        probe in 0u64..6_000,
    ) {
        let n = data.len() as u64;
        let m = (n / 5).max(1);
        let s = 16u64.min(m);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let truth = sorted.partition_point(|&x| x <= probe) as u64;

        let store = MemRunStore::new(data, m);
        let config = OpaqConfig::builder().run_length(m).sample_size(s).build().unwrap();
        let sketch = OpaqEstimator::new(config).build_sketch(&store).unwrap();
        let rb = sketch.rank_bounds(probe);
        prop_assert!(rb.min_rank <= truth && truth <= rb.max_rank,
            "rank {truth} outside [{}, {}]", rb.min_rank, rb.max_rank);
    }

    #[test]
    fn merged_sketches_preserve_lemmas(
        left in proptest::collection::vec(any::<u64>(), 100..1500),
        right in proptest::collection::vec(any::<u64>(), 100..1500),
    ) {
        let m = 100u64;
        let s = 10u64;
        let config = OpaqConfig::builder().run_length(m).sample_size(s).build().unwrap();
        let est = OpaqEstimator::new(config);

        let store_l = MemRunStore::new(left.clone(), m);
        let store_r = MemRunStore::new(right.clone(), m);
        let sketch = est.build_sketch(&store_l).unwrap().merge(&est.build_sketch(&store_r).unwrap()).unwrap();

        let mut all = left;
        all.extend(right);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        let n = all.len() as u64;

        for i in 1..4u64 {
            let phi = i as f64 / 4.0;
            let est = sketch.estimate(phi).unwrap();
            let psi = ((phi * n as f64).ceil() as u64).clamp(1, n);
            let truth = sorted[(psi - 1) as usize];
            prop_assert!(est.lower <= truth && truth <= est.upper);
        }
    }
}
