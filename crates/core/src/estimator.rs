//! The high-level driver: one pass over a [`RunStore`], producing a
//! [`QuantileSketch`].
//!
//! This is the "reading from the disk + finding the r·s sample points +
//! merging the r sample lists" pipeline of Table 2, with per-phase timing so
//! the experiment harness can reproduce the paper's I/O-fraction tables.

use crate::sample_phase::{RunSample, RunSampler};
use crate::sketch::QuantileSketch;
use crate::{Key, OpaqConfig, OpaqResult, QuantileEstimate};
use opaq_storage::RunStore;
use std::time::{Duration, Instant};

/// Wall-clock (or modelled, for I/O) durations of the sequential phases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SamplePhaseStats {
    /// Time spent reading runs from the store (modelled disk time when the
    /// store has a disk model attached, measured time otherwise).
    pub io: Duration,
    /// Time spent extracting the regular samples from each run.
    pub sampling: Duration,
    /// Time spent merging the per-run sample lists.
    pub merge: Duration,
}

impl SamplePhaseStats {
    /// Total time across the three phases.
    pub fn total(&self) -> Duration {
        self.io + self.sampling + self.merge
    }
}

/// The sequential OPAQ estimator.
#[derive(Debug, Clone, Copy)]
pub struct OpaqEstimator {
    config: OpaqConfig,
}

impl OpaqEstimator {
    /// Create an estimator with the given configuration.
    pub fn new(config: OpaqConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &OpaqConfig {
        &self.config
    }

    /// Run the sample phase over every run of `store` and return the sketch.
    ///
    /// The store's own [`opaq_storage::RunLayout`] defines the run structure
    /// (it is the physical layout of the data on disk); the configuration
    /// contributes the per-run sample size `s` and the selection strategy.
    pub fn build_sketch<K, S>(&self, store: &S) -> OpaqResult<QuantileSketch<K>>
    where
        K: Key,
        S: RunStore<K>,
    {
        self.build_sketch_with_stats(store)
            .map(|(sketch, _)| sketch)
    }

    /// Like [`Self::build_sketch`], also returning per-phase timings.
    pub fn build_sketch_with_stats<K, S>(
        &self,
        store: &S,
    ) -> OpaqResult<(QuantileSketch<K>, SamplePhaseStats)>
    where
        K: Key,
        S: RunStore<K>,
    {
        self.config.validate()?;
        if store.is_empty() {
            return Err(crate::OpaqError::EmptyDataset);
        }
        let mut stats = SamplePhaseStats::default();
        let layout = store.layout();
        let mut run_samples: Vec<RunSample<K>> = Vec::with_capacity(layout.runs() as usize);
        let io_before = store.io_stats().snapshot();

        // One run buffer recycled across the whole pass (the store decodes
        // into it in place) and one sampler reusing its rank table: the
        // steady-state loop allocates nothing proportional to `m`.
        let mut sampler = RunSampler::new(self.config.sample_size, self.config.strategy)?;
        let mut run_buf: Vec<K> = Vec::new();
        let mut measured_io = Duration::ZERO;
        for run_idx in 0..layout.runs() {
            let io_start = Instant::now();
            store.read_run_into(run_idx, &mut run_buf)?;
            measured_io += io_start.elapsed();

            let sample_start = Instant::now();
            let rs = sampler.sample(&mut run_buf)?;
            stats.sampling += sample_start.elapsed();
            run_samples.push(rs);
        }

        // Prefer the store's modelled disk time when a disk model is attached;
        // otherwise use the measured wall time of the read calls.
        let io_after = store.io_stats().snapshot();
        let modelled_delta = io_after.modelled.saturating_sub(io_before.modelled);
        stats.io = if modelled_delta > Duration::ZERO {
            modelled_delta
        } else {
            measured_io
        };

        let merge_start = Instant::now();
        let sketch = QuantileSketch::from_run_samples(run_samples)?;
        stats.merge = merge_start.elapsed();
        Ok((sketch, stats))
    }

    /// One-shot convenience: build the sketch and estimate the `q`-quantiles.
    pub fn estimate_q_quantiles<K, S>(
        &self,
        store: &S,
        q: u64,
    ) -> OpaqResult<Vec<QuantileEstimate<K>>>
    where
        K: Key,
        S: RunStore<K>,
    {
        self.build_sketch(store)?.estimate_q_quantiles(q)
    }

    /// One-shot convenience: build the sketch and estimate a single quantile.
    pub fn estimate<K, S>(&self, store: &S, phi: f64) -> OpaqResult<QuantileEstimate<K>>
    where
        K: Key,
        S: RunStore<K>,
    {
        self.build_sketch(store)?.estimate(phi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpaqError;
    use opaq_storage::{DiskModel, MemRunStore};

    fn config(m: u64, s: u64) -> OpaqConfig {
        OpaqConfig::builder()
            .run_length(m)
            .sample_size(s)
            .build()
            .unwrap()
    }

    #[test]
    fn build_sketch_from_mem_store() {
        let data: Vec<u64> = (0..10_000).rev().collect();
        let store = MemRunStore::new(data, 1000);
        let est = OpaqEstimator::new(config(1000, 100));
        let sketch = est.build_sketch(&store).unwrap();
        assert_eq!(sketch.total_elements(), 10_000);
        assert_eq!(sketch.runs(), 10);
        assert_eq!(sketch.len(), 1000);
        let q = sketch.estimate(0.5).unwrap();
        assert!(q.lower <= 4_999 && 4_999 <= q.upper);
    }

    #[test]
    fn estimate_q_quantiles_encloses_truth() {
        let data: Vec<u64> = (0..20_000).map(|i| (i * 2654435761u64) % 100_003).collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let store = MemRunStore::new(data, 2000);
        let est = OpaqEstimator::new(config(2000, 200));
        let quantiles = est.estimate_q_quantiles(&store, 10).unwrap();
        assert_eq!(quantiles.len(), 9);
        for q in quantiles {
            let truth = sorted[(q.target_rank - 1) as usize];
            assert!(q.lower <= truth && truth <= q.upper);
        }
    }

    #[test]
    fn stats_account_all_phases() {
        let data: Vec<u64> = (0..50_000).collect();
        let store = MemRunStore::new(data, 5000).with_disk_model(DiskModel::sp2_node_disk());
        let est = OpaqEstimator::new(config(5000, 500));
        let (_, stats) = est.build_sketch_with_stats(&store).unwrap();
        assert!(
            stats.io >= Duration::from_millis(100),
            "modelled I/O for 10 runs: {:?}",
            stats.io
        );
        assert!(stats.total() >= stats.io);
        assert!(stats.sampling > Duration::ZERO);
    }

    #[test]
    fn empty_store_errors() {
        let store = MemRunStore::<u64>::new(vec![], 10);
        let est = OpaqEstimator::new(config(10, 2));
        assert!(matches!(
            est.build_sketch(&store),
            Err(OpaqError::EmptyDataset)
        ));
    }

    #[test]
    fn invalid_config_rejected_at_build_time() {
        let store = MemRunStore::new((0u64..10).collect(), 5);
        let bad = OpaqConfig {
            run_length: 5,
            sample_size: 10,
            strategy: Default::default(),
        };
        let est = OpaqEstimator::new(bad);
        assert!(matches!(
            est.build_sketch(&store),
            Err(OpaqError::InvalidConfig(_))
        ));
    }

    #[test]
    fn one_shot_single_quantile() {
        let store = MemRunStore::new((0u64..1000).collect(), 100);
        let est = OpaqEstimator::new(config(100, 50));
        let q = est.estimate(&store, 0.9).unwrap();
        assert!(q.lower <= 899 && 899 <= q.upper);
    }
}
