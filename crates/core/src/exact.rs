//! Exact quantiles with one extra pass (§4).
//!
//! "The OPAQ algorithm can be extended to find the exact quantile value.
//! This will require one extra pass over the data set.  In the extra pass, we
//! keep the elements which are in the interval `[e_l, e_u]`.  We also count
//! the number of elements which are less than `e_l` to find the rank of
//! `e_l`, `R_el`.  The number of elements in the interval is at most `2n/s`
//! (Lemma 3).  We can find the exact value of the quantile by sorting those
//! elements: it is the element with rank `ψ − R_el`."

use crate::sketch::QuantileSketch;
use crate::{Key, OpaqError, OpaqResult};
use opaq_storage::RunStore;

/// Outcome of the exact second pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactQuantile<K> {
    /// The exact φ-quantile value.
    pub value: K,
    /// The target rank ψ that was resolved.
    pub target_rank: u64,
    /// How many elements had to be buffered during the second pass
    /// (`≤ 2n/s + duplicates of the bounds`, per Lemma 3).
    pub candidates_kept: usize,
}

/// Resolve the exact φ-quantile with one extra pass over `store`, using the
/// bounds from `sketch`.
///
/// # Errors
/// Propagates storage errors and rejects invalid `phi`; returns
/// [`OpaqError::IncompatibleSketches`] if the sketch does not describe the
/// same number of elements as the store (a mismatched pairing would silently
/// produce wrong answers).
pub fn exact_quantile<K, S>(
    store: &S,
    sketch: &QuantileSketch<K>,
    phi: f64,
) -> OpaqResult<ExactQuantile<K>>
where
    K: Key,
    S: RunStore<K>,
{
    if store.len() != sketch.total_elements() {
        return Err(OpaqError::IncompatibleSketches(format!(
            "sketch summarises {} elements but the store holds {}",
            sketch.total_elements(),
            store.len()
        )));
    }
    let estimate = sketch.estimate(phi)?;
    let psi = estimate.target_rank;
    let (lower, upper) = (estimate.lower, estimate.upper);

    // Second pass: count elements below the lower bound and keep candidates,
    // recycling one run buffer for the whole scan.
    let mut below = 0u64;
    let mut candidates: Vec<K> = Vec::new();
    let mut run_buf: Vec<K> = Vec::new();
    for run_idx in 0..store.layout().runs() {
        store.read_run_into(run_idx, &mut run_buf)?;
        for &key in &run_buf {
            if key < lower {
                below += 1;
            } else if key <= upper {
                candidates.push(key);
            }
        }
    }

    // The exact quantile has rank psi - below within the candidate set.
    let rank_in_candidates = psi
        .checked_sub(below)
        .filter(|&r| r >= 1 && r as usize <= candidates.len())
        .ok_or_else(|| {
            OpaqError::IncompatibleSketches(
                "estimate bounds do not enclose the target rank; sketch and store disagree".into(),
            )
        })?;
    let idx = (rank_in_candidates - 1) as usize;
    let value = *opaq_select::quickselect_block(&mut candidates, idx);
    Ok(ExactQuantile {
        value,
        target_rank: psi,
        candidates_kept: candidates.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpaqConfig, OpaqEstimator};
    use opaq_storage::MemRunStore;

    fn exact_truth(data: &[u64], phi: f64) -> u64 {
        let mut sorted = data.to_vec();
        sorted.sort_unstable();
        let psi = ((phi * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[psi - 1]
    }

    fn setup(data: Vec<u64>, m: u64, s: u64) -> (MemRunStore<u64>, QuantileSketch<u64>) {
        let store = MemRunStore::new(data, m);
        let config = OpaqConfig::builder()
            .run_length(m)
            .sample_size(s)
            .build()
            .unwrap();
        let sketch = OpaqEstimator::new(config).build_sketch(&store).unwrap();
        (store, sketch)
    }

    #[test]
    fn exact_median_of_shuffled_data() {
        let data: Vec<u64> = (0..10_000).map(|i| (i * 2654435761u64) % 99_991).collect();
        let truth = exact_truth(&data, 0.5);
        let (store, sketch) = setup(data, 1000, 100);
        let exact = exact_quantile(&store, &sketch, 0.5).unwrap();
        assert_eq!(exact.value, truth);
        assert_eq!(exact.target_rank, 5000);
    }

    #[test]
    fn exact_all_dectiles_with_duplicates() {
        let data: Vec<u64> = (0..5000).map(|i| i % 13).collect();
        for i in 1..10 {
            let phi = i as f64 / 10.0;
            let truth = exact_truth(&data, phi);
            let (store, sketch) = setup(data.clone(), 500, 50);
            let exact = exact_quantile(&store, &sketch, phi).unwrap();
            assert_eq!(exact.value, truth, "phi {phi}");
        }
    }

    #[test]
    fn candidate_buffer_respects_lemma_3_up_to_duplicates() {
        let data: Vec<u64> = (0..40_000).map(|i| (i * 48271) % 1_000_003).collect();
        let (store, sketch) = setup(data, 4000, 400);
        let exact = exact_quantile(&store, &sketch, 0.3).unwrap();
        // Distinct keys: the candidate count must respect the 2n/s bound
        // (plus the bound endpoints themselves).
        assert!(
            exact.candidates_kept as u64 <= sketch.max_elements_between_bounds() + 2,
            "kept {} > bound {}",
            exact.candidates_kept,
            sketch.max_elements_between_bounds()
        );
    }

    #[test]
    fn extreme_quantiles_are_exact() {
        let data: Vec<u64> = (0..777).map(|i| (i * 7919) % 5003).collect();
        let (store, sketch) = setup(data.clone(), 100, 10);
        let hi = exact_quantile(&store, &sketch, 1.0).unwrap();
        assert_eq!(hi.value, exact_truth(&data, 1.0));
        let lo = exact_quantile(&store, &sketch, 0.001).unwrap();
        assert_eq!(lo.value, exact_truth(&data, 0.001));
    }

    #[test]
    fn mismatched_store_and_sketch_rejected() {
        let (_, sketch) = setup((0..1000).collect(), 100, 10);
        let other_store = MemRunStore::new((0u64..500).collect(), 100);
        assert!(matches!(
            exact_quantile(&other_store, &sketch, 0.5),
            Err(OpaqError::IncompatibleSketches(_))
        ));
    }
}
