//! The [`QuantileSketch`]: the merged, sorted sample list plus the metadata
//! the quantile phase needs.
//!
//! The sketch *is* the paper's "sorted sample list of size r·s", enriched
//! with per-sample gaps so that runs of unequal length (tail runs, merged
//! sketches from different machines) keep their deterministic guarantees.
//! It supports:
//!
//! * quantile estimation ([`QuantileSketch::estimate`], the quantile phase),
//! * rank estimation of arbitrary values (§4 of the paper),
//! * merging with another sketch (the basis of both the incremental and the
//!   parallel formulations),
//! * the memory accounting the paper's `r·s + m ≤ M` constraint refers to.

use crate::quantile_phase::{self, QuantileEstimate};
use crate::rank::RankBounds;
use crate::sample_phase::RunSample;
use crate::{Key, OpaqError, OpaqResult};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One entry of the merged sample list: a sample value and the number of
/// elements of its run that it newly accounts for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplePoint<K> {
    /// The sample value.
    pub value: K,
    /// Number of elements of the sample's run represented by this sample
    /// (the paper's `m/s`; varies only for tail runs).
    pub gap: u64,
}

/// The merged, sorted sample list produced by the sample phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch<K> {
    samples: Vec<SamplePoint<K>>,
    /// Prefix sums of the gaps: `prefix_gaps[i]` = sum of `samples[..=i].gap`.
    prefix_gaps: Vec<u64>,
    total_elements: u64,
    runs: u64,
    max_gap: u64,
    dataset_min: K,
    dataset_max: K,
}

impl<K: Key> QuantileSketch<K> {
    /// Merge the per-run sample lists into a sketch (the final step of the
    /// sample phase).  Uses a k-way heap merge: `O(r·s·log r)`, exactly the
    /// cost the paper's Table 2 charges for "merging r sample lists".
    ///
    /// # Errors
    /// Returns [`OpaqError::EmptyDataset`] if `run_samples` is empty.
    pub fn from_run_samples(run_samples: Vec<RunSample<K>>) -> OpaqResult<Self> {
        if run_samples.is_empty() {
            return Err(OpaqError::EmptyDataset);
        }
        let runs = run_samples.len() as u64;
        let total_elements: u64 = run_samples.iter().map(|r| r.run_len).sum();
        let max_gap = run_samples
            .iter()
            .map(|r| r.max_gap())
            .max()
            .unwrap_or(1)
            .max(1);
        let dataset_min = run_samples
            .iter()
            .map(|r| r.run_min)
            .min()
            .expect("at least one run");
        let dataset_max = run_samples
            .iter()
            .map(|r| r.run_max())
            .max()
            .expect("at least one run");

        let total_samples: usize = run_samples.iter().map(|r| r.values.len()).sum();
        let mut samples = Vec::with_capacity(total_samples);

        // K-way merge of the already-sorted per-run sample lists.
        let mut heap: BinaryHeap<Reverse<(K, usize, usize)>> =
            BinaryHeap::with_capacity(run_samples.len());
        for (run_idx, rs) in run_samples.iter().enumerate() {
            if !rs.values.is_empty() {
                heap.push(Reverse((rs.values[0], run_idx, 0)));
            }
        }
        while let Some(Reverse((value, run_idx, pos))) = heap.pop() {
            let rs = &run_samples[run_idx];
            samples.push(SamplePoint {
                value,
                gap: rs.gaps[pos],
            });
            let next = pos + 1;
            if next < rs.values.len() {
                heap.push(Reverse((rs.values[next], run_idx, next)));
            }
        }
        debug_assert!(samples.windows(2).all(|w| w[0].value <= w[1].value));

        Ok(Self::from_parts(
            samples,
            total_elements,
            runs,
            max_gap,
            dataset_min,
            dataset_max,
        ))
    }

    /// Assemble a sketch from an already-sorted sample list and its metadata.
    ///
    /// This is the constructor used by the parallel global-merge algorithms,
    /// which produce the sorted sample list through message passing rather
    /// than through [`QuantileSketch::from_run_samples`].
    ///
    /// # Errors
    /// [`OpaqError::EmptyDataset`] if `samples` is empty or `total_elements`
    /// is zero, and [`OpaqError::IncompatibleSketches`] if the samples are
    /// not sorted by value, the gaps do not sum to `total_elements`, `runs`
    /// is zero, a gap is zero or exceeds `max_gap` (an understated `max_gap`
    /// would silently loosen nothing but *tighten* the quantile-phase slack
    /// below what the data supports, breaking the enclosure guarantee), or
    /// the samples do not respect `dataset_min`/`dataset_max`.
    pub fn assemble(
        samples: Vec<SamplePoint<K>>,
        total_elements: u64,
        runs: u64,
        max_gap: u64,
        dataset_min: K,
        dataset_max: K,
    ) -> OpaqResult<Self> {
        if samples.is_empty() || total_elements == 0 {
            return Err(OpaqError::EmptyDataset);
        }
        if runs == 0 {
            return Err(OpaqError::IncompatibleSketches(
                "a non-empty sketch must summarise at least one run".into(),
            ));
        }
        if !samples.windows(2).all(|w| w[0].value <= w[1].value) {
            return Err(OpaqError::IncompatibleSketches(
                "sample list must be sorted by value".into(),
            ));
        }
        if samples.iter().any(|s| s.gap == 0) {
            return Err(OpaqError::IncompatibleSketches(
                "every sample must account for at least one element".into(),
            ));
        }
        // Gaps ≥ 1 everywhere, so this also rejects max_gap == 0.
        let observed_max_gap = samples.iter().map(|s| s.gap).max().expect("non-empty");
        if observed_max_gap > max_gap {
            return Err(OpaqError::IncompatibleSketches(format!(
                "sample gaps reach {observed_max_gap} but max_gap claims {max_gap}"
            )));
        }
        let gap_sum: u64 = samples.iter().map(|s| s.gap).sum();
        if gap_sum != total_elements {
            return Err(OpaqError::IncompatibleSketches(format!(
                "sample gaps sum to {gap_sum}, expected {total_elements}"
            )));
        }
        if dataset_min > dataset_max {
            return Err(OpaqError::IncompatibleSketches(
                "dataset_min must not exceed dataset_max".into(),
            ));
        }
        // Samples are dataset elements, so they must lie within [min, max],
        // and regular sampling always samples the run maximum, so the
        // largest sample *is* the dataset maximum.  The quantile phase's
        // psi == n short-circuit relies on exactly this invariant.
        let first = samples.first().expect("non-empty").value;
        let last = samples.last().expect("non-empty").value;
        if first < dataset_min {
            return Err(OpaqError::IncompatibleSketches(
                "samples must not undercut dataset_min".into(),
            ));
        }
        if last != dataset_max {
            return Err(OpaqError::IncompatibleSketches(
                "the largest sample must equal dataset_max (the run maximum is always sampled)"
                    .into(),
            ));
        }
        Ok(Self::from_parts(
            samples,
            total_elements,
            runs,
            max_gap,
            dataset_min,
            dataset_max,
        ))
    }

    /// Assemble a sketch from raw parts (used by merge and by the parallel
    /// global-merge algorithms, which produce an already-sorted sample list).
    pub(crate) fn from_parts(
        samples: Vec<SamplePoint<K>>,
        total_elements: u64,
        runs: u64,
        max_gap: u64,
        dataset_min: K,
        dataset_max: K,
    ) -> Self {
        let mut prefix_gaps = Vec::with_capacity(samples.len());
        let mut acc = 0u64;
        for s in &samples {
            acc += s.gap;
            prefix_gaps.push(acc);
        }
        debug_assert_eq!(acc, total_elements, "gaps must account for every element");
        Self {
            samples,
            prefix_gaps,
            total_elements,
            runs,
            max_gap,
            dataset_min,
            dataset_max,
        }
    }

    /// The sorted sample list.
    pub fn samples(&self) -> &[SamplePoint<K>] {
        &self.samples
    }

    /// Number of sample points (`r·s` in the paper's notation).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the sketch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total number of data elements the sketch summarises (`n`).
    pub fn total_elements(&self) -> u64 {
        self.total_elements
    }

    /// Number of runs merged into the sketch (`r`).
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// The largest per-sample gap (`⌈m/s⌉` for equal full runs).
    pub fn max_gap(&self) -> u64 {
        self.max_gap
    }

    /// The smallest element of the dataset.
    pub fn dataset_min(&self) -> K {
        self.dataset_min
    }

    /// The largest element of the dataset (always equal to the largest
    /// sample, because the run maximum is always sampled).
    pub fn dataset_max(&self) -> K {
        self.dataset_max
    }

    /// Prefix sums of the sample gaps (internal to the quantile phase).
    pub(crate) fn prefix_gaps(&self) -> &[u64] {
        &self.prefix_gaps
    }

    /// Lemma 1/2 bound: the maximum number of data elements that can lie
    /// between the true quantile and either estimated bound.  Equals
    /// `g + (r−1)(g−1)` which is at most `n/s` when all runs are full.
    pub fn max_elements_per_bound(&self) -> u64 {
        self.max_gap + (self.runs.saturating_sub(1)) * (self.max_gap.saturating_sub(1))
    }

    /// Lemma 3 bound: the maximum number of data elements in `[e_l, e_u]`,
    /// i.e. twice [`Self::max_elements_per_bound`].
    pub fn max_elements_between_bounds(&self) -> u64 {
        2 * self.max_elements_per_bound()
    }

    /// Estimate the φ-quantile (the quantile phase, formulas (2)–(5)).
    ///
    /// The boundaries are exact: `phi = 0.0` targets rank 1 and bounds it
    /// below by the dataset minimum, `phi = 1.0` returns the dataset maximum.
    ///
    /// # Errors
    /// [`OpaqError::InvalidPhi`] if `phi ∉ [0, 1]`, [`OpaqError::EmptyDataset`]
    /// if the sketch is empty.
    pub fn estimate(&self, phi: f64) -> OpaqResult<QuantileEstimate<K>> {
        quantile_phase::estimate_phi(self, phi)
    }

    /// Estimate the quantile of 1-based rank `psi` directly.
    pub fn estimate_rank(&self, psi: u64) -> OpaqResult<QuantileEstimate<K>> {
        quantile_phase::estimate_rank(self, psi)
    }

    /// Estimate all `q`-quantiles (`φ = 1/q … (q−1)/q`).  The cost per
    /// additional quantile is `O(log(r·s))` — the "constant extra time per
    /// quantile" the paper advertises, since the sample list is already built.
    ///
    /// The degenerate request `q = 1` has exactly one boundary, the
    /// 1.0-quantile, so it returns the dataset maximum (exactly — the run
    /// maximum is always sampled) instead of an out-of-range rank.
    pub fn estimate_q_quantiles(&self, q: u64) -> OpaqResult<Vec<QuantileEstimate<K>>> {
        if q == 0 {
            return Err(OpaqError::InvalidConfig("q must be at least 1".into()));
        }
        if q == 1 {
            return Ok(vec![self.estimate(1.0)?]);
        }
        (1..q).map(|i| self.estimate(i as f64 / q as f64)).collect()
    }

    /// Estimate several quantile fractions in one call.
    ///
    /// Each additional quantile costs `O(log(r·s))` on the already-built
    /// sample list, so batching amortises nothing but saves per-call overhead
    /// in serving paths; the method exists so a server holding an
    /// `Arc<QuantileSketch>` snapshot can answer a batch request against one
    /// consistent sketch version with a single shared reference.
    ///
    /// # Errors
    /// Fails on the first invalid `phi`, with no partial results.
    pub fn estimate_many(&self, phis: &[f64]) -> OpaqResult<Vec<QuantileEstimate<K>>> {
        phis.iter().map(|&phi| self.estimate(phi)).collect()
    }

    /// Bounds on the rank of an arbitrary `value` (§4: "the sorted sample
    /// list can obviously be used to estimate the rank of any arbitrary
    /// element in the whole data set").
    pub fn rank_bounds(&self, value: K) -> RankBounds {
        crate::rank::rank_bounds(self, value)
    }

    /// The sketch's content as the storage layer's wire form, ready for
    /// [`opaq_storage::sketch_codec`] to encode.
    pub fn to_wire(&self) -> opaq_storage::SketchWire<K> {
        opaq_storage::SketchWire {
            total_elements: self.total_elements,
            runs: self.runs,
            max_gap: self.max_gap,
            dataset_min: self.dataset_min,
            dataset_max: self.dataset_max,
            samples: self.samples.iter().map(|s| (s.value, s.gap)).collect(),
        }
    }

    /// Rebuild a sketch from its decoded wire form, re-validating every
    /// semantic invariant via [`QuantileSketch::assemble`] — a structurally
    /// valid file whose content violates the sketch invariants (unsorted
    /// samples, gap-sum mismatch, …) is rejected here.
    ///
    /// # Errors
    /// The same errors as [`QuantileSketch::assemble`].
    pub fn from_wire(wire: opaq_storage::SketchWire<K>) -> OpaqResult<Self> {
        let opaq_storage::SketchWire {
            total_elements,
            runs,
            max_gap,
            dataset_min,
            dataset_max,
            samples,
        } = wire;
        Self::assemble(
            samples
                .into_iter()
                .map(|(value, gap)| SamplePoint { value, gap })
                .collect(),
            total_elements,
            runs,
            max_gap,
            dataset_min,
            dataset_max,
        )
    }

    /// Merge two sketches summarising disjoint parts of a dataset.
    ///
    /// This is the primitive behind both the incremental formulation (§4:
    /// "keep the sorted samples from the runs of the old data … merge with
    /// the old sorted samples") and the parallel global merge.
    ///
    /// Ties are broken in favour of `self`, so folding sketches left to
    /// right keeps equal sample values ordered by the run index they came
    /// from.  That stability is what makes the sharded ingestion path
    /// (`opaq-parallel`'s `ShardedOpaq`) bit-identical to the sequential
    /// fold for any shard count.
    ///
    /// # Errors
    /// [`OpaqError::EmptyDataset`] if either sketch is empty: an empty
    /// sketch has no meaningful `dataset_min`/`dataset_max`, so merging it
    /// would propagate whatever placeholder values it was constructed with.
    /// Callers that may hold "no data yet" should model that as
    /// `Option<QuantileSketch>` (as [`crate::IncrementalOpaq`] does) rather
    /// than as an empty sketch.
    pub fn merge(&self, other: &QuantileSketch<K>) -> OpaqResult<QuantileSketch<K>> {
        if self.is_empty() || other.is_empty() {
            return Err(OpaqError::EmptyDataset);
        }
        let mut samples = Vec::with_capacity(self.samples.len() + other.samples.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.samples.len() && j < other.samples.len() {
            if self.samples[i].value <= other.samples[j].value {
                samples.push(self.samples[i]);
                i += 1;
            } else {
                samples.push(other.samples[j]);
                j += 1;
            }
        }
        samples.extend_from_slice(&self.samples[i..]);
        samples.extend_from_slice(&other.samples[j..]);
        Ok(QuantileSketch::from_parts(
            samples,
            self.total_elements + other.total_elements,
            self.runs + other.runs,
            self.max_gap.max(other.max_gap),
            self.dataset_min.min(other.dataset_min),
            self.dataset_max.max(other.dataset_max),
        ))
    }

    /// Memory footprint of the sketch in sample points (the `r·s` term of the
    /// paper's memory constraint).
    pub fn memory_sample_points(&self) -> usize {
        self.samples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_phase::sample_run;
    use opaq_select::SelectionStrategy;

    fn sketch_of_runs(runs: Vec<Vec<u64>>, s: u64) -> QuantileSketch<u64> {
        let run_samples: Vec<RunSample<u64>> = runs
            .into_iter()
            .map(|mut run| sample_run(&mut run, s, SelectionStrategy::default()).unwrap())
            .collect();
        QuantileSketch::from_run_samples(run_samples).unwrap()
    }

    #[test]
    fn merged_sample_list_is_sorted_and_complete() {
        let sketch = sketch_of_runs(
            vec![
                (0..100).collect(),
                (100..200).rev().collect(),
                (50..150).collect(),
            ],
            10,
        );
        assert_eq!(sketch.len(), 30);
        assert_eq!(sketch.total_elements(), 300);
        assert_eq!(sketch.runs(), 3);
        assert!(sketch
            .samples()
            .windows(2)
            .all(|w| w[0].value <= w[1].value));
        assert_eq!(sketch.prefix_gaps().last().copied(), Some(300));
        assert_eq!(sketch.dataset_min(), 0);
        assert_eq!(sketch.dataset_max(), 199);
        assert_eq!(sketch.max_gap(), 10);
    }

    #[test]
    fn bounds_formulae() {
        let sketch = sketch_of_runs(vec![(0..100).collect(), (0..100).collect()], 10);
        // g = 10, r = 2 -> per bound 10 + 1*9 = 19, between bounds 38.
        assert_eq!(sketch.max_elements_per_bound(), 19);
        assert_eq!(sketch.max_elements_between_bounds(), 38);
    }

    #[test]
    fn single_run_sketch() {
        let sketch = sketch_of_runs(vec![(0..64).collect()], 8);
        assert_eq!(sketch.runs(), 1);
        assert_eq!(sketch.max_elements_per_bound(), 8);
    }

    #[test]
    fn empty_run_samples_error() {
        assert!(matches!(
            QuantileSketch::<u64>::from_run_samples(vec![]),
            Err(OpaqError::EmptyDataset)
        ));
    }

    #[test]
    fn merge_combines_counts_and_stays_sorted() {
        let a = sketch_of_runs(vec![(0..100).collect()], 10);
        let b = sketch_of_runs(vec![(1000..1100).collect(), (500..600).collect()], 10);
        let merged = a.merge(&b).unwrap();
        assert_eq!(merged.total_elements(), 300);
        assert_eq!(merged.runs(), 3);
        assert_eq!(merged.len(), 30);
        assert!(merged
            .samples()
            .windows(2)
            .all(|w| w[0].value <= w[1].value));
        assert_eq!(merged.dataset_min(), 0);
        assert_eq!(merged.dataset_max(), 1099);
        assert_eq!(merged.prefix_gaps().last().copied(), Some(300));
    }

    #[test]
    fn merge_is_commutative_in_content() {
        let a = sketch_of_runs(vec![(0..50).collect()], 5);
        let b = sketch_of_runs(vec![(25..75).collect()], 5);
        let ab = a.merge(&b).unwrap();
        let ba = b.merge(&a).unwrap();
        assert_eq!(ab.total_elements(), ba.total_elements());
        assert_eq!(
            ab.samples().iter().map(|s| s.value).collect::<Vec<_>>(),
            ba.samples().iter().map(|s| s.value).collect::<Vec<_>>()
        );
    }

    #[test]
    fn estimate_q_quantiles_boundaries() {
        let sketch = sketch_of_runs(vec![(0..100).collect()], 10);
        assert!(matches!(
            sketch.estimate_q_quantiles(0),
            Err(OpaqError::InvalidConfig(_))
        ));
        // q = 1: the single boundary is the dataset maximum, exactly.
        let single = sketch.estimate_q_quantiles(1).unwrap();
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].lower, 99);
        assert_eq!(single[0].upper, 99);
        assert_eq!(single[0].target_rank, 100);
        assert_eq!(sketch.estimate_q_quantiles(4).unwrap().len(), 3);
    }

    #[test]
    fn merge_with_degenerate_sketches() {
        let a = sketch_of_runs(vec![(0..100).collect()], 10);
        // Merging two single-run sketches keeps min/max/max_gap correct.
        let b = sketch_of_runs(vec![(200..250).collect()], 5);
        let merged = a.merge(&b).unwrap();
        assert_eq!(merged.dataset_min(), 0);
        assert_eq!(merged.dataset_max(), 249);
        assert_eq!(merged.runs(), 2);
        assert_eq!(merged.max_gap(), 10);
        assert_eq!(merged.total_elements(), 150);
        // A single-element run degenerates gracefully.
        let c = sketch_of_runs(vec![vec![7]], 4);
        let merged = a.merge(&c).unwrap();
        assert_eq!(merged.total_elements(), 101);
        assert_eq!(merged.max_gap(), 10);
        assert_eq!(merged.dataset_min(), 0);
    }

    #[test]
    fn assemble_rejects_degenerate_inputs() {
        // Empty sample list: typed error, not a sketch with bogus min/max.
        assert!(matches!(
            QuantileSketch::<u64>::assemble(vec![], 0, 0, 1, 0, 0),
            Err(OpaqError::EmptyDataset)
        ));
        let sp = |value, gap| SamplePoint { value, gap };
        // Unsorted samples.
        assert!(matches!(
            QuantileSketch::assemble(vec![sp(5u64, 1), sp(3, 1)], 2, 1, 1, 3, 5),
            Err(OpaqError::IncompatibleSketches(_))
        ));
        // Gap sum mismatch.
        assert!(matches!(
            QuantileSketch::assemble(vec![sp(1u64, 2)], 3, 1, 2, 1, 1),
            Err(OpaqError::IncompatibleSketches(_))
        ));
        // Zero gap.
        assert!(matches!(
            QuantileSketch::assemble(vec![sp(1u64, 0), sp(2, 2)], 2, 1, 2, 1, 2),
            Err(OpaqError::IncompatibleSketches(_))
        ));
        // Zero runs for a non-empty list.
        assert!(matches!(
            QuantileSketch::assemble(vec![sp(1u64, 1)], 1, 0, 1, 1, 1),
            Err(OpaqError::IncompatibleSketches(_))
        ));
        // Inverted min/max.
        assert!(matches!(
            QuantileSketch::assemble(vec![sp(1u64, 1)], 1, 1, 1, 9, 1),
            Err(OpaqError::IncompatibleSketches(_))
        ));
        // Understated max_gap: would tighten the quantile-phase slack below
        // what the data supports, so it must be rejected (this also covers
        // max_gap == 0, since every gap is at least 1).
        assert!(matches!(
            QuantileSketch::assemble(vec![sp(1u64, 5), sp(2, 5)], 10, 1, 4, 1, 2),
            Err(OpaqError::IncompatibleSketches(_))
        ));
        assert!(matches!(
            QuantileSketch::assemble(vec![sp(4u64, 1)], 1, 1, 0, 2, 4),
            Err(OpaqError::IncompatibleSketches(_))
        ));
        // Largest sample must equal dataset_max: the run maximum is always
        // sampled, and the psi == n short-circuit relies on it.
        assert!(matches!(
            QuantileSketch::assemble(vec![sp(4u64, 1)], 1, 1, 1, 2, 9),
            Err(OpaqError::IncompatibleSketches(_))
        ));
        // A valid single-sample sketch assembles.
        let s = QuantileSketch::assemble(vec![sp(4u64, 1)], 1, 1, 1, 2, 4).unwrap();
        assert_eq!(s.max_gap(), 1);
        assert_eq!(s.dataset_min(), 2);
        assert_eq!(s.dataset_max(), 4);
    }

    #[test]
    fn estimate_many_matches_single_estimates() {
        let sketch = sketch_of_runs(vec![(0..1000).collect(), (500..1500).collect()], 50);
        let phis = [0.0, 0.25, 0.5, 0.75, 0.9, 1.0];
        let batch = sketch.estimate_many(&phis).unwrap();
        assert_eq!(batch.len(), phis.len());
        for (phi, est) in phis.iter().zip(&batch) {
            assert_eq!(est, &sketch.estimate(*phi).unwrap());
        }
        assert!(sketch.estimate_many(&[0.5, 1.5]).is_err());
        assert!(sketch.estimate_many(&[]).unwrap().is_empty());
    }

    #[test]
    fn wire_round_trip_preserves_sketch() {
        let sketch = sketch_of_runs(vec![(0..100).collect(), (100..200).rev().collect()], 10);
        let restored = QuantileSketch::from_wire(sketch.to_wire()).unwrap();
        assert_eq!(restored, sketch);
        assert_eq!(
            restored.estimate(0.5).unwrap(),
            sketch.estimate(0.5).unwrap()
        );
    }

    #[test]
    fn from_wire_rejects_semantic_corruption() {
        let sketch = sketch_of_runs(vec![(0..100).collect()], 10);
        let mut wire = sketch.to_wire();
        wire.samples.swap(0, 5); // unsorted
        assert!(matches!(
            QuantileSketch::from_wire(wire),
            Err(OpaqError::IncompatibleSketches(_))
        ));
        let mut wire = sketch.to_wire();
        wire.total_elements += 1; // gap-sum mismatch
        assert!(QuantileSketch::from_wire(wire).is_err());
    }

    #[test]
    fn memory_sample_points_matches_len() {
        let sketch = sketch_of_runs(vec![(0..100).collect(); 4], 25);
        assert_eq!(sketch.memory_sample_points(), 100);
        assert!(!sketch.is_empty());
    }
}
