//! The sample phase (§2.1): regular samples from every run.
//!
//! From a run of `m` in-memory elements the phase extracts the `s` elements
//! of rank `⌈m/s⌉, ⌈2m/s⌉, …, m` by multi-selection (`O(m log s)`), together
//! with the *gap* of each sample — the number of new elements of the run it
//! stands for.  Gaps are what make the error bounds work for runs whose
//! length is not an exact multiple of `s` (the paper assumes divisibility
//! "without loss of generality"; we do not have to).
//!
//! ## The buffer-reuse contract
//!
//! `sample_run` (and [`RunSampler::sample`]) borrows the run as `&mut [K]`
//! and the selection happens **in place**: on return the slice is *partially
//! reordered* (each sample value sits at its exact rank, with `<=` on the
//! left and `>=` on the right).  Nothing in the slice is consumed, which is
//! what makes the allocation-free ingest loop legal: callers read the next
//! run **into the same buffer** (`RunStore::read_run_into`) and sample it
//! again, recycling one `m`-element allocation across the whole pass.  A
//! caller that needs the run's original order must copy it first — every
//! OPAQ phase only ever needs each run once, so none do.  [`RunSampler`]
//! additionally caches the regular-rank table between runs of equal length,
//! so steady-state per-run work allocates only the `s`-sized `values`/`gaps`
//! vectors that outlive the call inside the returned [`RunSample`].

use crate::{Key, OpaqError, OpaqResult};
use opaq_select::{multiselect_into, regular_sample_ranks, SelectionStrategy};

/// The regular samples of one run, in ascending order, with their gaps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSample<K> {
    /// Sample values in ascending order (the last one is the run maximum).
    pub values: Vec<K>,
    /// `gaps[i]` = within-run rank of `values[i]` minus the rank of
    /// `values[i-1]` (with rank 0 before the first sample); the gaps sum to
    /// the run length.
    pub gaps: Vec<u64>,
    /// The smallest element of the run (needed because the first sample has
    /// rank `⌈m/s⌉ ≥ 1` and therefore is generally *not* the minimum).
    pub run_min: K,
    /// The run length `m` this sample was derived from.
    pub run_len: u64,
}

impl<K: Key> RunSample<K> {
    /// The largest sample, which by construction is the run maximum.
    pub fn run_max(&self) -> K {
        *self
            .values
            .last()
            .expect("a run sample always has at least one sample")
    }

    /// Largest gap in this run (`⌈m/s⌉` for full regular sampling).
    pub fn max_gap(&self) -> u64 {
        self.gaps.iter().copied().max().unwrap_or(0)
    }
}

/// Extract the `s` regular samples of `run` (which is partially reordered in
/// the process, as selection is in-place — see the module docs for the
/// buffer-reuse contract).
///
/// If the run is shorter than `s`, every element becomes a sample with gap 1
/// — the bounds only get tighter.
///
/// One-shot convenience over [`RunSampler`]; loops over many runs should
/// hold a `RunSampler` to reuse its rank table.
///
/// # Errors
/// Returns [`OpaqError::EmptyDataset`] if the run is empty or
/// [`OpaqError::InvalidConfig`] if `s == 0`.
pub fn sample_run<K: Key>(
    run: &mut [K],
    s: u64,
    strategy: SelectionStrategy,
) -> OpaqResult<RunSample<K>> {
    RunSampler::new(s, strategy)?.sample(run)
}

/// Reusable sample-phase worker: extracts regular samples run after run,
/// caching the rank table between runs of the same length.
///
/// Every full-length run of an ingest shares one `(m, s)` pair, so in steady
/// state [`RunSampler::sample`] recomputes nothing and allocates only the
/// returned [`RunSample`]'s own `values`/`gaps` vectors.
#[derive(Debug, Clone)]
pub struct RunSampler {
    s: u64,
    strategy: SelectionStrategy,
    /// Regular ranks for a run of length `cached_m` (invalid when
    /// `cached_m == 0`, i.e. before the first run).
    ranks: Vec<usize>,
    cached_m: usize,
}

impl RunSampler {
    /// Create a sampler taking `s` regular samples per run with `strategy`.
    ///
    /// # Errors
    /// Returns [`OpaqError::InvalidConfig`] if `s == 0`.
    pub fn new(s: u64, strategy: SelectionStrategy) -> OpaqResult<Self> {
        if s == 0 {
            return Err(OpaqError::InvalidConfig(
                "sample size s must be positive".into(),
            ));
        }
        Ok(Self {
            s,
            strategy,
            ranks: Vec::new(),
            cached_m: 0,
        })
    }

    /// Extract the regular samples of `run` (partially reordered in place).
    ///
    /// # Errors
    /// Returns [`OpaqError::EmptyDataset`] if the run is empty.
    pub fn sample<K: Key>(&mut self, run: &mut [K]) -> OpaqResult<RunSample<K>> {
        if run.is_empty() {
            return Err(OpaqError::EmptyDataset);
        }
        let m = run.len();
        let s_eff = (self.s as usize).min(m);
        if self.cached_m != m {
            self.ranks = regular_sample_ranks(m, s_eff);
            self.cached_m = m;
        }
        let run_min = *run.iter().min().expect("non-empty run has a minimum");
        let mut values = Vec::with_capacity(self.ranks.len());
        multiselect_into(run, &self.ranks, self.strategy, &mut values);
        let mut gaps = Vec::with_capacity(self.ranks.len());
        let mut prev_rank_1based = 0u64;
        for &r in &self.ranks {
            let rank_1based = (r + 1) as u64;
            gaps.push(rank_1based - prev_rank_1based);
            prev_rank_1based = rank_1based;
        }
        debug_assert_eq!(gaps.iter().sum::<u64>(), m as u64);
        Ok(RunSample {
            values,
            gaps,
            run_min,
            run_len: m as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opaq_select::SelectionStrategy;

    fn strategy() -> SelectionStrategy {
        SelectionStrategy::default()
    }

    #[test]
    fn samples_of_identity_run() {
        // run = 1..=100, s = 10 -> samples 10, 20, ..., 100, gaps all 10.
        let mut run: Vec<u64> = (1..=100).collect();
        let rs = sample_run(&mut run, 10, strategy()).unwrap();
        assert_eq!(rs.values, vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(rs.gaps, vec![10; 10]);
        assert_eq!(rs.run_min, 1);
        assert_eq!(rs.run_max(), 100);
        assert_eq!(rs.run_len, 100);
        assert_eq!(rs.max_gap(), 10);
    }

    #[test]
    fn samples_of_shuffled_run_match_sorted_ranks() {
        let mut run: Vec<u64> = (0..1000).map(|i| (i * 48271) % 10007).collect();
        let mut sorted = run.clone();
        sorted.sort_unstable();
        let rs = sample_run(&mut run, 16, strategy()).unwrap();
        assert_eq!(rs.values.len(), 16);
        assert!(rs.values.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(rs.run_max(), *sorted.last().unwrap());
        assert_eq!(rs.run_min, sorted[0]);
        assert_eq!(rs.gaps.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn last_sample_is_always_run_max() {
        for len in [7usize, 64, 129, 1000] {
            let mut run: Vec<u64> = (0..len as u64).rev().collect();
            let rs = sample_run(&mut run, 5, strategy()).unwrap();
            assert_eq!(rs.run_max(), (len - 1) as u64, "len {len}");
        }
    }

    #[test]
    fn short_run_takes_every_element() {
        let mut run = vec![5u64, 1, 9];
        let rs = sample_run(&mut run, 10, strategy()).unwrap();
        assert_eq!(rs.values, vec![1, 5, 9]);
        assert_eq!(rs.gaps, vec![1, 1, 1]);
    }

    #[test]
    fn gaps_sum_to_run_length_when_not_divisible() {
        let mut run: Vec<u64> = (0..103).collect();
        let rs = sample_run(&mut run, 10, strategy()).unwrap();
        assert_eq!(rs.gaps.iter().sum::<u64>(), 103);
        assert_eq!(rs.values.len(), 10);
        assert!(rs.max_gap() <= 11);
    }

    #[test]
    fn duplicate_heavy_run() {
        let mut run = vec![7u64; 64];
        let rs = sample_run(&mut run, 8, strategy()).unwrap();
        assert!(rs.values.iter().all(|&v| v == 7));
        assert_eq!(rs.gaps, vec![8; 8]);
    }

    #[test]
    fn run_sampler_reuses_rank_table_across_runs() {
        let mut sampler = RunSampler::new(10, strategy()).unwrap();
        // Two full-length runs, then a short tail run, then full-length again.
        for len in [100usize, 100, 37, 100] {
            let mut run: Vec<u64> = (0..len as u64).rev().collect();
            let one_shot = sample_run(&mut run.clone(), 10, strategy()).unwrap();
            let rs = sampler.sample(&mut run).unwrap();
            assert_eq!(rs, one_shot, "len {len}");
            assert_eq!(rs.run_len, len as u64);
            assert_eq!(rs.run_max(), (len - 1) as u64);
        }
    }

    #[test]
    fn run_sampler_rejects_zero_s_and_empty_run() {
        assert!(matches!(
            RunSampler::new(0, strategy()),
            Err(OpaqError::InvalidConfig(_))
        ));
        let mut sampler = RunSampler::new(4, strategy()).unwrap();
        let mut empty: Vec<u64> = vec![];
        assert!(matches!(
            sampler.sample(&mut empty),
            Err(OpaqError::EmptyDataset)
        ));
    }

    #[test]
    fn empty_run_errors() {
        let mut run: Vec<u64> = vec![];
        assert!(matches!(
            sample_run(&mut run, 4, strategy()),
            Err(OpaqError::EmptyDataset)
        ));
    }

    #[test]
    fn zero_sample_size_errors() {
        let mut run = vec![1u64, 2];
        assert!(matches!(
            sample_run(&mut run, 0, strategy()),
            Err(OpaqError::InvalidConfig(_))
        ));
    }
}
