//! The sample phase (§2.1): regular samples from every run.
//!
//! From a run of `m` in-memory elements the phase extracts the `s` elements
//! of rank `⌈m/s⌉, ⌈2m/s⌉, …, m` by multi-selection (`O(m log s)`), together
//! with the *gap* of each sample — the number of new elements of the run it
//! stands for.  Gaps are what make the error bounds work for runs whose
//! length is not an exact multiple of `s` (the paper assumes divisibility
//! "without loss of generality"; we do not have to).

use crate::{Key, OpaqError, OpaqResult};
use opaq_select::{multiselect_with, regular_sample_ranks, SelectionStrategy};

/// The regular samples of one run, in ascending order, with their gaps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSample<K> {
    /// Sample values in ascending order (the last one is the run maximum).
    pub values: Vec<K>,
    /// `gaps[i]` = within-run rank of `values[i]` minus the rank of
    /// `values[i-1]` (with rank 0 before the first sample); the gaps sum to
    /// the run length.
    pub gaps: Vec<u64>,
    /// The smallest element of the run (needed because the first sample has
    /// rank `⌈m/s⌉ ≥ 1` and therefore is generally *not* the minimum).
    pub run_min: K,
    /// The run length `m` this sample was derived from.
    pub run_len: u64,
}

impl<K: Key> RunSample<K> {
    /// The largest sample, which by construction is the run maximum.
    pub fn run_max(&self) -> K {
        *self
            .values
            .last()
            .expect("a run sample always has at least one sample")
    }

    /// Largest gap in this run (`⌈m/s⌉` for full regular sampling).
    pub fn max_gap(&self) -> u64 {
        self.gaps.iter().copied().max().unwrap_or(0)
    }
}

/// Extract the `s` regular samples of `run` (which is partially reordered in
/// the process, as selection is in-place).
///
/// If the run is shorter than `s`, every element becomes a sample with gap 1
/// — the bounds only get tighter.
///
/// # Errors
/// Returns [`OpaqError::EmptyDataset`] if the run is empty or
/// [`OpaqError::InvalidConfig`] if `s == 0`.
pub fn sample_run<K: Key>(
    run: &mut [K],
    s: u64,
    strategy: SelectionStrategy,
) -> OpaqResult<RunSample<K>> {
    if run.is_empty() {
        return Err(OpaqError::EmptyDataset);
    }
    if s == 0 {
        return Err(OpaqError::InvalidConfig(
            "sample size s must be positive".into(),
        ));
    }
    let m = run.len();
    let s_eff = (s as usize).min(m);
    let run_min = *run.iter().min().expect("non-empty run has a minimum");
    let ranks = regular_sample_ranks(m, s_eff);
    let values = multiselect_with(run, &ranks, strategy);
    let mut gaps = Vec::with_capacity(ranks.len());
    let mut prev_rank_1based = 0u64;
    for &r in &ranks {
        let rank_1based = (r + 1) as u64;
        gaps.push(rank_1based - prev_rank_1based);
        prev_rank_1based = rank_1based;
    }
    debug_assert_eq!(gaps.iter().sum::<u64>(), m as u64);
    Ok(RunSample {
        values,
        gaps,
        run_min,
        run_len: m as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use opaq_select::SelectionStrategy;

    fn strategy() -> SelectionStrategy {
        SelectionStrategy::default()
    }

    #[test]
    fn samples_of_identity_run() {
        // run = 1..=100, s = 10 -> samples 10, 20, ..., 100, gaps all 10.
        let mut run: Vec<u64> = (1..=100).collect();
        let rs = sample_run(&mut run, 10, strategy()).unwrap();
        assert_eq!(rs.values, vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(rs.gaps, vec![10; 10]);
        assert_eq!(rs.run_min, 1);
        assert_eq!(rs.run_max(), 100);
        assert_eq!(rs.run_len, 100);
        assert_eq!(rs.max_gap(), 10);
    }

    #[test]
    fn samples_of_shuffled_run_match_sorted_ranks() {
        let mut run: Vec<u64> = (0..1000).map(|i| (i * 48271) % 10007).collect();
        let mut sorted = run.clone();
        sorted.sort_unstable();
        let rs = sample_run(&mut run, 16, strategy()).unwrap();
        assert_eq!(rs.values.len(), 16);
        assert!(rs.values.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(rs.run_max(), *sorted.last().unwrap());
        assert_eq!(rs.run_min, sorted[0]);
        assert_eq!(rs.gaps.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn last_sample_is_always_run_max() {
        for len in [7usize, 64, 129, 1000] {
            let mut run: Vec<u64> = (0..len as u64).rev().collect();
            let rs = sample_run(&mut run, 5, strategy()).unwrap();
            assert_eq!(rs.run_max(), (len - 1) as u64, "len {len}");
        }
    }

    #[test]
    fn short_run_takes_every_element() {
        let mut run = vec![5u64, 1, 9];
        let rs = sample_run(&mut run, 10, strategy()).unwrap();
        assert_eq!(rs.values, vec![1, 5, 9]);
        assert_eq!(rs.gaps, vec![1, 1, 1]);
    }

    #[test]
    fn gaps_sum_to_run_length_when_not_divisible() {
        let mut run: Vec<u64> = (0..103).collect();
        let rs = sample_run(&mut run, 10, strategy()).unwrap();
        assert_eq!(rs.gaps.iter().sum::<u64>(), 103);
        assert_eq!(rs.values.len(), 10);
        assert!(rs.max_gap() <= 11);
    }

    #[test]
    fn duplicate_heavy_run() {
        let mut run = vec![7u64; 64];
        let rs = sample_run(&mut run, 8, strategy()).unwrap();
        assert!(rs.values.iter().all(|&v| v == 7));
        assert_eq!(rs.gaps, vec![8; 8]);
    }

    #[test]
    fn empty_run_errors() {
        let mut run: Vec<u64> = vec![];
        assert!(matches!(
            sample_run(&mut run, 4, strategy()),
            Err(OpaqError::EmptyDataset)
        ));
    }

    #[test]
    fn zero_sample_size_errors() {
        let mut run = vec![1u64, 2];
        assert!(matches!(
            sample_run(&mut run, 0, strategy()),
            Err(OpaqError::InvalidConfig(_))
        ));
    }
}
