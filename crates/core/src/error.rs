//! Error type for the OPAQ core.

use opaq_storage::StorageError;
use std::fmt;

/// Errors produced by the OPAQ core.
#[derive(Debug)]
pub enum OpaqError {
    /// The storage layer failed while reading a run.
    Storage(StorageError),
    /// The configuration is internally inconsistent (e.g. `s > m`).
    InvalidConfig(String),
    /// The operation needs a non-empty dataset / sketch.
    EmptyDataset,
    /// A quantile fraction outside `[0, 1]` (or a rank outside `1..=n`) was
    /// requested.
    InvalidPhi(f64),
    /// Sketches with incompatible shapes were combined.
    IncompatibleSketches(String),
}

impl fmt::Display for OpaqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpaqError::Storage(e) => write!(f, "storage error: {e}"),
            OpaqError::InvalidConfig(msg) => write!(f, "invalid OPAQ configuration: {msg}"),
            OpaqError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            OpaqError::InvalidPhi(phi) => {
                write!(f, "quantile fraction {phi} outside the valid range [0, 1]")
            }
            OpaqError::IncompatibleSketches(msg) => write!(f, "incompatible sketches: {msg}"),
        }
    }
}

impl std::error::Error for OpaqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OpaqError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for OpaqError {
    fn from(e: StorageError) -> Self {
        OpaqError::Storage(e)
    }
}

/// Convenience alias for results in this crate.
pub type OpaqResult<T> = Result<T, OpaqError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(OpaqError::EmptyDataset.to_string().contains("non-empty"));
        assert!(OpaqError::InvalidPhi(1.5).to_string().contains("1.5"));
        assert!(OpaqError::InvalidConfig("s > m".into())
            .to_string()
            .contains("s > m"));
        assert!(OpaqError::IncompatibleSketches("x".into())
            .to_string()
            .contains('x'));
        let storage: OpaqError = StorageError::Corrupt("bad".into()).into();
        assert!(storage.to_string().contains("bad"));
    }

    #[test]
    fn source_chains_storage_errors() {
        use std::error::Error;
        let e: OpaqError = StorageError::Corrupt("bad".into()).into();
        assert!(e.source().is_some());
        assert!(OpaqError::EmptyDataset.source().is_none());
    }
}
