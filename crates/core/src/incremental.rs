//! Incremental maintenance (§4).
//!
//! "It is easy to use the OPAQ algorithm to deal with new data incrementally.
//! If the sorted samples are kept from the runs of the old data, one need
//! only compute the sorted samples from the new runs and merge with the old
//! sorted samples."  [`IncrementalOpaq`] is that loop: it holds the current
//! sketch and folds in new runs (or whole new stores) as they arrive, without
//! ever revisiting old data.

use crate::sample_phase::{RunSample, RunSampler};
use crate::sketch::QuantileSketch;
use crate::{Key, OpaqConfig, OpaqError, OpaqResult, QuantileEstimate};
use opaq_storage::RunStore;

/// An OPAQ estimator that absorbs data incrementally, one run at a time.
#[derive(Debug, Clone)]
pub struct IncrementalOpaq<K> {
    config: OpaqConfig,
    sketch: Option<QuantileSketch<K>>,
    sampler: RunSampler,
    runs_absorbed: u64,
}

impl<K: Key> IncrementalOpaq<K> {
    /// Create an empty incremental estimator.
    ///
    /// # Errors
    /// Returns [`OpaqError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: OpaqConfig) -> OpaqResult<Self> {
        config.validate()?;
        Ok(Self {
            config,
            sketch: None,
            sampler: RunSampler::new(config.sample_size, config.strategy)?,
            runs_absorbed: 0,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &OpaqConfig {
        &self.config
    }

    /// Number of runs absorbed so far.
    pub fn runs_absorbed(&self) -> u64 {
        self.runs_absorbed
    }

    /// Total number of elements summarised so far.
    pub fn total_elements(&self) -> u64 {
        self.sketch
            .as_ref()
            .map(|s| s.total_elements())
            .unwrap_or(0)
    }

    /// Absorb one new run of raw data (consumed; the run is sampled in place).
    ///
    /// Runs larger than the configured run length are split so that the
    /// per-run error guarantees keep holding.
    pub fn add_run(&mut self, mut run: Vec<K>) -> OpaqResult<()> {
        self.add_run_slice(&mut run)
    }

    /// Absorb one new run **in place**: `run` is partially reordered by the
    /// selection (the buffer-reuse contract of
    /// [`crate::sample_phase`]) and handed back to the caller, who typically
    /// refills it with the next run — the allocation-free ingest hot path
    /// used by the sharded workers.
    ///
    /// Runs larger than the configured run length are split so that the
    /// per-run error guarantees keep holding.
    ///
    /// # Errors
    /// [`OpaqError::EmptyDataset`] if `run` is empty.
    pub fn add_run_slice(&mut self, run: &mut [K]) -> OpaqResult<()> {
        if run.is_empty() {
            return Err(OpaqError::EmptyDataset);
        }
        let m = self.config.run_length as usize;
        let mut run_samples: Vec<RunSample<K>> = Vec::with_capacity(run.len().div_ceil(m));
        let mut start = 0usize;
        while start < run.len() {
            let end = (start + m).min(run.len());
            run_samples.push(self.sampler.sample(&mut run[start..end])?);
            start = end;
        }
        let new_sketch = QuantileSketch::from_run_samples(run_samples)?;
        self.runs_absorbed += new_sketch.runs();
        self.sketch = Some(match self.sketch.take() {
            Some(old) => old.merge(&new_sketch)?,
            None => new_sketch,
        });
        Ok(())
    }

    /// Absorb every run of a store (e.g. a newly arrived data file),
    /// recycling a single run buffer across the whole pass.
    pub fn add_store<S: RunStore<K>>(&mut self, store: &S) -> OpaqResult<()> {
        if store.is_empty() {
            return Err(OpaqError::EmptyDataset);
        }
        let mut buf: Vec<K> = Vec::new();
        for run_idx in 0..store.layout().runs() {
            store.read_run_into(run_idx, &mut buf)?;
            self.add_run_slice(&mut buf)?;
        }
        Ok(())
    }

    /// The current sketch, if any data has been absorbed.
    pub fn sketch(&self) -> Option<&QuantileSketch<K>> {
        self.sketch.as_ref()
    }

    /// Consume the estimator and return the accumulated sketch, if any data
    /// has been absorbed (used by the sharded ingestion workers, which hand
    /// their per-shard sketch to the merge tree without cloning it).
    pub fn into_sketch(self) -> Option<QuantileSketch<K>> {
        self.sketch
    }

    /// Estimate the φ-quantile of everything absorbed so far.
    ///
    /// # Errors
    /// [`OpaqError::EmptyDataset`] if no data has been absorbed yet.
    pub fn estimate(&self, phi: f64) -> OpaqResult<QuantileEstimate<K>> {
        self.sketch
            .as_ref()
            .ok_or(OpaqError::EmptyDataset)?
            .estimate(phi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opaq_storage::MemRunStore;

    fn config(m: u64, s: u64) -> OpaqConfig {
        OpaqConfig::builder()
            .run_length(m)
            .sample_size(s)
            .build()
            .unwrap()
    }

    #[test]
    fn incremental_matches_batch_estimate_quality() {
        let data: Vec<u64> = (0..20_000).map(|i| (i * 2654435761u64) % 65_537).collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();

        let mut inc = IncrementalOpaq::new(config(1000, 100)).unwrap();
        for chunk in data.chunks(1000) {
            inc.add_run(chunk.to_vec()).unwrap();
        }
        assert_eq!(inc.total_elements(), 20_000);
        assert_eq!(inc.runs_absorbed(), 20);

        for i in 1..10 {
            let phi = i as f64 / 10.0;
            let est = inc.estimate(phi).unwrap();
            let truth = sorted[(est.target_rank - 1) as usize];
            assert!(est.lower <= truth && truth <= est.upper, "phi {phi}");
        }
    }

    #[test]
    fn oversized_run_is_split() {
        let mut inc = IncrementalOpaq::new(config(100, 10)).unwrap();
        inc.add_run((0..1000).collect()).unwrap();
        assert_eq!(inc.runs_absorbed(), 10);
        assert_eq!(inc.total_elements(), 1000);
        // Per-bound slack must reflect run length 100, not 1000.
        assert!(inc.sketch().unwrap().max_gap() <= 10);
    }

    #[test]
    fn add_store_absorbs_every_run() {
        let store = MemRunStore::new((0u64..5000).collect(), 500);
        let mut inc = IncrementalOpaq::new(config(500, 50)).unwrap();
        inc.add_store(&store).unwrap();
        assert_eq!(inc.total_elements(), 5000);
        let est = inc.estimate(0.5).unwrap();
        assert!(est.lower <= 2499 && 2499 <= est.upper);
    }

    #[test]
    fn estimates_stay_valid_as_data_arrives() {
        // Old data: values 0..10k; new data: values 100k..110k — the median
        // shifts dramatically and the sketch must track it.
        let mut inc = IncrementalOpaq::new(config(1000, 100)).unwrap();
        inc.add_run((0..10_000).collect()).unwrap();
        let before = inc.estimate(0.5).unwrap();
        assert!(before.lower <= 4_999 && 4_999 <= before.upper);

        inc.add_run((100_000..110_000).collect()).unwrap();
        let after = inc.estimate(0.5).unwrap();
        // True median of the combined 20k elements (rank 10_000) is 9_999.
        assert!(after.lower <= 9_999 && 9_999 <= after.upper);
        assert_eq!(inc.total_elements(), 20_000);
    }

    #[test]
    fn empty_cases_error() {
        let mut inc = IncrementalOpaq::<u64>::new(config(10, 2)).unwrap();
        assert!(matches!(inc.estimate(0.5), Err(OpaqError::EmptyDataset)));
        assert!(matches!(inc.add_run(vec![]), Err(OpaqError::EmptyDataset)));
        let empty_store = MemRunStore::<u64>::new(vec![], 10);
        assert!(matches!(
            inc.add_store(&empty_store),
            Err(OpaqError::EmptyDataset)
        ));
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(IncrementalOpaq::<u64>::new(OpaqConfig {
            run_length: 5,
            sample_size: 10,
            strategy: Default::default()
        })
        .is_err());
    }
}
