//! OPAQ configuration: run length `m`, sample size `s`, selection strategy.
//!
//! The paper constrains the parameters by the memory budget `M` through
//! `r·s + m ≤ M` (the sorted sample list of all runs plus one in-memory run
//! must fit) and notes that `s ≥ 2q` is needed for good bounds on `q`
//! quantiles, which limits the number of quantiles to `O(M²/n)`.
//! [`OpaqConfig::for_memory_budget`] encodes that sizing rule.

use crate::{OpaqError, OpaqResult};
use opaq_select::SelectionStrategy;
use serde::{Deserialize, Serialize};

/// Configuration of a sequential OPAQ run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpaqConfig {
    /// Run length `m`: the number of elements processed in memory at once.
    pub run_length: u64,
    /// Sample size `s`: regular samples taken per run.  The paper's
    /// experiments use 250–1000; accuracy is proportional to `s`
    /// (error ≤ `n/s` elements per bound).
    pub sample_size: u64,
    /// Single-rank selection algorithm used inside the multi-selection.
    #[serde(skip, default)]
    pub strategy: SelectionStrategy,
}

impl OpaqConfig {
    /// Start building a configuration.
    pub fn builder() -> OpaqConfigBuilder {
        OpaqConfigBuilder::default()
    }

    /// Pick `m` and `s` for a dataset of `n` elements under a memory budget
    /// of `memory_elements` elements, aiming to estimate up to `q` quantiles.
    ///
    /// The rule follows §2.3: the in-memory run (`m` elements) and the merged
    /// sample list (`r·s = n·s/m` elements) must both fit, and `s ≥ 2q`.
    /// We split the budget evenly: `m = memory/2`, then the largest `s`
    /// with `n·s/m ≤ memory/2`, clamped to `[2q, m]`.
    ///
    /// # Errors
    /// Returns [`OpaqError::InvalidConfig`] if the budget cannot satisfy
    /// `s ≥ 2q`.
    pub fn for_memory_budget(n: u64, memory_elements: u64, q: u64) -> OpaqResult<Self> {
        if n == 0 || memory_elements == 0 || q == 0 {
            return Err(OpaqError::InvalidConfig(
                "n, memory and q must all be positive".to_string(),
            ));
        }
        let m = (memory_elements / 2).clamp(1, n);
        let sample_budget = memory_elements - m;
        // r*s <= sample_budget  =>  s <= sample_budget * m / n
        let max_s = sample_budget.saturating_mul(m) / n;
        let s = max_s.min(m);
        let min_s = 2 * q;
        if s < min_s.min(m) {
            return Err(OpaqError::InvalidConfig(format!(
                "memory budget of {memory_elements} elements cannot hold {min_s} samples per run \
                 for n={n} (max feasible s={s})"
            )));
        }
        Ok(Self {
            run_length: m,
            sample_size: s.max(min_s.min(m)),
            strategy: SelectionStrategy::default(),
        })
    }

    /// Validate the invariants `m ≥ 1`, `1 ≤ s ≤ m`.
    pub fn validate(&self) -> OpaqResult<()> {
        if self.run_length == 0 {
            return Err(OpaqError::InvalidConfig(
                "run length m must be positive".into(),
            ));
        }
        if self.sample_size == 0 {
            return Err(OpaqError::InvalidConfig(
                "sample size s must be positive".into(),
            ));
        }
        if self.sample_size > self.run_length {
            return Err(OpaqError::InvalidConfig(format!(
                "sample size s={} cannot exceed run length m={}",
                self.sample_size, self.run_length
            )));
        }
        Ok(())
    }

    /// The per-sample sub-run length `⌈m/s⌉`: each sample point stands for at
    /// most this many elements of its run.
    pub fn sub_run_length(&self) -> u64 {
        self.run_length.div_ceil(self.sample_size)
    }

    /// The paper's memory-footprint estimate in elements for a dataset of
    /// `n` elements: one run plus the merged sample list (`m + r·s`).
    pub fn memory_elements(&self, n: u64) -> u64 {
        let runs = n.div_ceil(self.run_length.max(1));
        self.run_length + runs * self.sample_size
    }
}

impl Default for OpaqConfig {
    fn default() -> Self {
        Self {
            run_length: 1 << 20,
            sample_size: 1000,
            strategy: SelectionStrategy::default(),
        }
    }
}

/// Builder for [`OpaqConfig`].
#[derive(Debug, Clone, Copy, Default)]
pub struct OpaqConfigBuilder {
    run_length: Option<u64>,
    sample_size: Option<u64>,
    strategy: SelectionStrategy,
}

impl OpaqConfigBuilder {
    /// Set the run length `m`.
    pub fn run_length(mut self, m: u64) -> Self {
        self.run_length = Some(m);
        self
    }

    /// Set the per-run sample size `s`.
    pub fn sample_size(mut self, s: u64) -> Self {
        self.sample_size = Some(s);
        self
    }

    /// Set the single-rank selection strategy.
    pub fn strategy(mut self, strategy: SelectionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Build and validate the configuration.
    pub fn build(self) -> OpaqResult<OpaqConfig> {
        let defaults = OpaqConfig::default();
        let config = OpaqConfig {
            run_length: self.run_length.unwrap_or(defaults.run_length),
            sample_size: self.sample_size.unwrap_or(defaults.sample_size),
            strategy: self.strategy,
        };
        config.validate()?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_valid() {
        let c = OpaqConfig::builder().build().unwrap();
        assert_eq!(c.run_length, 1 << 20);
        assert_eq!(c.sample_size, 1000);
    }

    #[test]
    fn builder_rejects_s_greater_than_m() {
        let err = OpaqConfig::builder()
            .run_length(10)
            .sample_size(11)
            .build()
            .unwrap_err();
        assert!(matches!(err, OpaqError::InvalidConfig(_)));
    }

    #[test]
    fn builder_rejects_zero_values() {
        assert!(OpaqConfig::builder().run_length(0).build().is_err());
        assert!(OpaqConfig::builder().sample_size(0).build().is_err());
    }

    #[test]
    fn sub_run_length_rounds_up() {
        let c = OpaqConfig::builder()
            .run_length(10)
            .sample_size(3)
            .build()
            .unwrap();
        assert_eq!(c.sub_run_length(), 4);
        let c = OpaqConfig::builder()
            .run_length(100)
            .sample_size(10)
            .build()
            .unwrap();
        assert_eq!(c.sub_run_length(), 10);
    }

    #[test]
    fn memory_budget_sizing_satisfies_constraints() {
        let n = 1_000_000;
        let memory = 200_000;
        let q = 10;
        let c = OpaqConfig::for_memory_budget(n, memory, q).unwrap();
        c.validate().unwrap();
        assert!(c.sample_size >= 2 * q);
        assert!(
            c.memory_elements(n) <= memory + c.run_length,
            "within ~budget: {}",
            c.memory_elements(n)
        );
    }

    #[test]
    fn memory_budget_too_small_errors() {
        let err = OpaqConfig::for_memory_budget(1_000_000, 100, 50).unwrap_err();
        assert!(matches!(err, OpaqError::InvalidConfig(_)));
        assert!(OpaqConfig::for_memory_budget(0, 100, 10).is_err());
    }

    #[test]
    fn memory_elements_accounts_run_plus_samples() {
        let c = OpaqConfig::builder()
            .run_length(1000)
            .sample_size(100)
            .build()
            .unwrap();
        // n = 10_000 -> r = 10 -> memory = 1000 + 10*100 = 2000
        assert_eq!(c.memory_elements(10_000), 2000);
    }
}
