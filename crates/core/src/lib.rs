//! # OPAQ — One-Pass Algorithm for Quantiles
//!
//! A faithful implementation of the algorithm from
//! *"A One-Pass Algorithm for Accurately Estimating Quantiles for
//! Disk-Resident Data"* (Alsabti, Ranka, Singh — VLDB 1997).
//!
//! OPAQ estimates any set of φ-quantiles of a disk-resident dataset in a
//! single pass with **deterministic, distribution-free error bounds**:
//!
//! 1. **Sample phase** ([`sample_phase`]): the data is read as `r` runs of
//!    `m` elements; from each run the `s` *regular samples* (the elements of
//!    rank `m/s, 2m/s, …, m`) are extracted by multi-selection in
//!    `O(m log s)`, and the `r` sorted sample lists are merged into one
//!    sorted list of `r·s` samples — the [`QuantileSketch`].
//! 2. **Quantile phase** ([`quantile_phase`]): for a target rank `ψ = ⌈φ·n⌉`
//!    two positions in the sample list give a lower bound `e_l` and an upper
//!    bound `e_u` with `e_l ≤ Q_φ ≤ e_u`, and at most `n/s` data elements lie
//!    between the true quantile and either bound (Lemmas 1–3).
//!
//! The crate also implements the paper's §4 extensions: an exact-quantile
//! second pass ([`exact`]), incremental maintenance when new data arrives
//! ([`incremental`]), and rank estimation for arbitrary values ([`rank`]).
//!
//! ## Quick example
//!
//! ```
//! use opaq_core::{OpaqConfig, OpaqEstimator};
//! use opaq_storage::MemRunStore;
//!
//! // 100k keys, "disk-resident" as runs of 10k elements.
//! let data: Vec<u64> = (0..100_000u64).rev().collect();
//! let store = MemRunStore::new(data, 10_000);
//!
//! let config = OpaqConfig::builder()
//!     .run_length(10_000)
//!     .sample_size(500)
//!     .build()
//!     .unwrap();
//! let sketch = OpaqEstimator::new(config).build_sketch(&store).unwrap();
//!
//! let est = sketch.estimate(0.5).unwrap();
//! assert!(est.lower <= 49_999 && 49_999 <= est.upper);
//! // Lemma 3: at most 2n/s elements may sit between the bounds.
//! assert!(sketch.max_elements_between_bounds() <= 2 * 100_000 / 500 + 2);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bounds;
pub mod config;
pub mod error;
pub mod estimator;
pub mod exact;
pub mod incremental;
pub mod quantile_phase;
pub mod rank;
pub mod sample_phase;
pub mod sketch;

pub use bounds::TheoreticalBounds;
pub use config::{OpaqConfig, OpaqConfigBuilder};
pub use error::{OpaqError, OpaqResult};
pub use estimator::{OpaqEstimator, SamplePhaseStats};
pub use exact::{exact_quantile, ExactQuantile};
pub use incremental::IncrementalOpaq;
pub use quantile_phase::QuantileEstimate;
pub use rank::RankBounds;
pub use sample_phase::{sample_run, RunSample, RunSampler};
pub use sketch::{QuantileSketch, SamplePoint};

/// The key bound required by the OPAQ core: totally ordered, cheap to copy,
/// and shareable across the parallel machine.
pub trait Key: Ord + Copy + Send + Sync + 'static {}
impl<T: Ord + Copy + Send + Sync + 'static> Key for T {}
