//! The quantile phase (§2.2): lower and upper bounds from the sample list.
//!
//! For the target rank `ψ = ⌈φ·n⌉` the phase picks two positions in the
//! merged sample list `L` (1-based in the paper):
//!
//! * upper bound `e_u = L[⌈ψ·s/m⌉]` — the first sample guaranteed to have at
//!   least `ψ` elements of the dataset at or below it;
//! * lower bound `e_l = L[⌊ψ·s/m − (r−1)(1 − s/m)⌋]` — the last sample whose
//!   worst-case count of elements strictly below it still leaves room for the
//!   true quantile.
//!
//! We implement the general (gap-weighted) form of those formulas so that
//! tail runs and merged sketches of unequal runs keep the guarantee
//! `e_l ≤ Q_φ ≤ e_u`; for full, equal runs the indices computed here are
//! exactly the paper's.

use crate::sketch::QuantileSketch;
use crate::{Key, OpaqError, OpaqResult};

/// The result of estimating one quantile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileEstimate<K> {
    /// The quantile fraction φ (1.0 when the estimate was requested by rank).
    pub phi: f64,
    /// The target 1-based rank `ψ = ⌈φ·n⌉`.
    pub target_rank: u64,
    /// Deterministic lower bound: `lower ≤ Q_φ`.
    pub lower: K,
    /// Deterministic upper bound: `Q_φ ≤ upper`.
    pub upper: K,
    /// Index of the lower bound in the sample list, or `None` when the target
    /// rank is so small that only the dataset minimum can serve as a bound.
    pub lower_sample_index: Option<usize>,
    /// Index of the upper bound in the sample list.
    pub upper_sample_index: usize,
    /// Worst-case number of data elements between the true quantile and
    /// either bound (Lemma 1/2; at most `n/s` for full equal runs).
    pub max_rank_slack: u64,
}

impl<K: Key> QuantileEstimate<K> {
    /// Midpoint-style point estimate: the lower bound (the paper evaluates
    /// accuracy in terms of the interval, but a single representative value
    /// is convenient for histogram construction).  Returns the upper bound
    /// when the lower bound degenerated to the dataset minimum.
    pub fn point_estimate(&self) -> K {
        if self.lower_sample_index.is_some() {
            self.lower
        } else {
            self.upper
        }
    }
}

/// Estimate the φ-quantile of the dataset summarised by `sketch`.
///
/// The boundaries are well-defined rather than out-of-range: `phi = 0.0`
/// targets rank 1 (whose lower bound is the dataset minimum, exactly the
/// smallest element) and `phi = 1.0` targets rank `n`, which resolves to the
/// dataset maximum exactly because the run maximum is always sampled.
pub fn estimate_phi<K: Key>(
    sketch: &QuantileSketch<K>,
    phi: f64,
) -> OpaqResult<QuantileEstimate<K>> {
    if !((0.0..=1.0).contains(&phi) && phi.is_finite()) {
        return Err(OpaqError::InvalidPhi(phi));
    }
    if sketch.is_empty() {
        return Err(OpaqError::EmptyDataset);
    }
    let n = sketch.total_elements();
    let psi = ((phi * n as f64).ceil() as u64).clamp(1, n);
    let mut est = estimate_rank(sketch, psi)?;
    est.phi = phi;
    Ok(est)
}

/// Estimate the quantile of 1-based rank `psi` (`1 ≤ psi ≤ n`).
///
/// `psi = n` short-circuits to the dataset maximum with zero slack: the
/// largest sample of every run-derived sketch *is* the run (and hence
/// dataset) maximum, so reporting a looser interval would discard
/// information the sketch already holds.
pub fn estimate_rank<K: Key>(
    sketch: &QuantileSketch<K>,
    psi: u64,
) -> OpaqResult<QuantileEstimate<K>> {
    if sketch.is_empty() {
        return Err(OpaqError::EmptyDataset);
    }
    let n = sketch.total_elements();
    if psi == 0 || psi > n {
        return Err(OpaqError::InvalidPhi(psi as f64 / n.max(1) as f64));
    }
    if psi == n {
        let last = sketch.len() - 1;
        return Ok(QuantileEstimate {
            phi: 1.0,
            target_rank: n,
            lower: sketch.dataset_max(),
            upper: sketch.dataset_max(),
            lower_sample_index: Some(last),
            upper_sample_index: last,
            max_rank_slack: 0,
        });
    }
    let samples = sketch.samples();
    let prefix = sketch.prefix_gaps();
    let r = sketch.runs();
    let g = sketch.max_gap();
    // Worst-case over-count of elements strictly below a sample, contributed
    // by the runs other than the sample's own: (r−1)(g−1).
    let cross_run_slack = r.saturating_sub(1) * g.saturating_sub(1);

    // ----- upper bound: first j with prefix[j] >= psi -----------------------
    // prefix[j] is a lower bound on the number of elements <= L[j], so the
    // true psi-th element cannot exceed L[j].
    let upper_idx = prefix.partition_point(|&covered| covered < psi);
    debug_assert!(upper_idx < samples.len(), "total coverage equals n >= psi");
    let upper = samples[upper_idx].value;

    // ----- lower bound: last i with prefix[i] + cross_run_slack <= psi ------
    // prefix[i] + cross_run_slack bounds the number of elements strictly
    // below L[i] from above, so L[i] <= the psi-th element.
    let candidates =
        prefix.partition_point(|&covered| covered.saturating_add(cross_run_slack) <= psi);
    let (lower, lower_sample_index) = if candidates == 0 {
        // No sample is guaranteed to sit at or below the target rank; fall
        // back to the dataset minimum, which trivially is a lower bound.
        (sketch.dataset_min(), None)
    } else {
        (samples[candidates - 1].value, Some(candidates - 1))
    };

    Ok(QuantileEstimate {
        phi: psi as f64 / n as f64,
        target_rank: psi,
        lower,
        upper,
        lower_sample_index,
        upper_sample_index: upper_idx,
        max_rank_slack: sketch.max_elements_per_bound(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_phase::sample_run;
    use crate::sketch::QuantileSketch;
    use opaq_select::SelectionStrategy;

    fn sketch_of(data: Vec<u64>, m: usize, s: u64) -> QuantileSketch<u64> {
        let run_samples = data
            .chunks(m)
            .map(|chunk| {
                let mut run = chunk.to_vec();
                sample_run(&mut run, s, SelectionStrategy::default()).unwrap()
            })
            .collect();
        QuantileSketch::from_run_samples(run_samples).unwrap()
    }

    /// Brute-force check that the bounds enclose the true quantile.
    fn check_encloses_truth(data: &[u64], m: usize, s: u64, q: u64) {
        let sketch = sketch_of(data.to_vec(), m, s);
        let mut sorted = data.to_vec();
        sorted.sort_unstable();
        let n = data.len() as u64;
        for i in 1..q {
            let phi = i as f64 / q as f64;
            let psi = ((phi * n as f64).ceil() as u64).clamp(1, n);
            let truth = sorted[(psi - 1) as usize];
            let est = sketch.estimate(phi).unwrap();
            assert!(
                est.lower <= truth && truth <= est.upper,
                "phi={phi}: bounds [{}, {}] miss truth {truth} (n={n}, m={m}, s={s})",
                est.lower,
                est.upper
            );
        }
    }

    #[test]
    fn paper_formula_on_identity_data() {
        // n = 1000, m = 100, s = 10 (g = 10, r = 10).
        let data: Vec<u64> = (1..=1000).collect();
        let sketch = sketch_of(data.clone(), 100, 10);
        let est = sketch.estimate(0.5).unwrap();
        // psi = 500. upper index (1-based) = ceil(psi*s/m) = 50.
        assert_eq!(est.upper_sample_index, 49);
        // lower index = floor(psi*s/m - (r-1)(1-s/m)) = floor(50 - 9*0.9) = 41.
        assert_eq!(est.lower_sample_index, Some(40));
        assert!(est.lower <= 500 && 500 <= est.upper);
        assert_eq!(est.max_rank_slack, 10 + 9 * 9);
        assert_eq!(est.target_rank, 500);
    }

    #[test]
    fn bounds_enclose_truth_identity_and_shuffled() {
        let data: Vec<u64> = (0..5000).collect();
        check_encloses_truth(&data, 500, 50, 10);
        let shuffled: Vec<u64> = (0..5000).map(|i| (i * 2654435761u64) % 977).collect();
        check_encloses_truth(&shuffled, 500, 50, 10);
    }

    #[test]
    fn bounds_enclose_truth_with_duplicates_and_small_s() {
        let data: Vec<u64> = (0..3000).map(|i| i % 7).collect();
        check_encloses_truth(&data, 300, 4, 10);
        check_encloses_truth(&data, 300, 300, 10);
    }

    #[test]
    fn bounds_enclose_truth_uneven_tail_run() {
        let data: Vec<u64> = (0..1234).map(|i| (i * 48271) % 10_007).collect();
        check_encloses_truth(&data, 100, 10, 10);
    }

    #[test]
    fn extreme_quantiles() {
        let data: Vec<u64> = (1..=1000).collect();
        let sketch = sketch_of(data, 100, 10);
        // phi so small that no sample can be a lower bound: dataset min used.
        let est = sketch.estimate(0.001).unwrap();
        assert_eq!(est.lower, 1);
        assert!(est.lower_sample_index.is_none());
        assert!(est.upper >= 1);
        // phi = 1.0 must return the dataset maximum, exactly.
        let est = sketch.estimate(1.0).unwrap();
        assert_eq!(est.upper, 1000);
        assert_eq!(est.lower, 1000);
        assert_eq!(est.max_rank_slack, 0);
        assert_eq!(est.target_rank, 1000);
        // phi = 0.0 targets rank 1 and is bounded below by the dataset min.
        let est = sketch.estimate(0.0).unwrap();
        assert_eq!(est.phi, 0.0);
        assert_eq!(est.target_rank, 1);
        assert_eq!(est.lower, 1);
        assert!(est.upper >= 1);
    }

    #[test]
    fn rank_boundaries_are_exact_or_enclosing() {
        // Tail run (m does not divide n) plus duplicates: the boundary ranks
        // must still resolve without out-of-range indices.
        let data: Vec<u64> = (0..1037).map(|i| i % 13).collect();
        let sketch = sketch_of(data.clone(), 100, 7);
        let n = data.len() as u64;
        // estimate_rank(n) == dataset maximum, exactly.
        let est = sketch.estimate_rank(n).unwrap();
        assert_eq!(est.lower, 12);
        assert_eq!(est.upper, 12);
        assert_eq!(est.upper_sample_index, sketch.len() - 1);
        assert_eq!(est.lower_sample_index, Some(sketch.len() - 1));
        // estimate_rank(1) is bounded below by the dataset minimum.
        let est = sketch.estimate_rank(1).unwrap();
        assert_eq!(est.lower, 0);
    }

    #[test]
    fn point_estimate_prefers_lower_bound() {
        let data: Vec<u64> = (1..=1000).collect();
        let sketch = sketch_of(data, 100, 10);
        let est = sketch.estimate(0.5).unwrap();
        assert_eq!(est.point_estimate(), est.lower);
        let est = sketch.estimate(0.001).unwrap();
        assert_eq!(est.point_estimate(), est.upper);
    }

    #[test]
    fn lemma_1_and_2_rank_slack_holds_empirically() {
        // Check |rank(bound) - psi| <= max_rank_slack for many phis.
        let data: Vec<u64> = (0..10_000)
            .map(|i| (i * 1103515245 + 12345) % 65536)
            .collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let sketch = sketch_of(data, 1000, 100);
        let slack = sketch.max_elements_per_bound();
        for i in 1..20u64 {
            let phi = i as f64 / 20.0;
            let est = sketch.estimate(phi).unwrap();
            let psi = est.target_rank;
            let rank_of = |v: u64| sorted.partition_point(|&x| x <= v) as u64;
            let rank_lt = |v: u64| sorted.partition_point(|&x| x < v) as u64;
            // lower bound may be at most `slack` elements below the target
            assert!(psi.saturating_sub(rank_of(est.lower)) <= slack, "phi {phi}");
            // upper bound may be at most `slack` elements above the target
            assert!(rank_lt(est.upper).saturating_sub(psi) <= slack, "phi {phi}");
        }
    }

    #[test]
    fn invalid_phi_rejected() {
        let data: Vec<u64> = (0..100).collect();
        let sketch = sketch_of(data, 10, 2);
        // phi = 0.0 is a valid boundary now; negatives are not.
        assert!(sketch.estimate(0.0).is_ok());
        assert!(matches!(
            sketch.estimate(-0.1),
            Err(OpaqError::InvalidPhi(_))
        ));
        assert!(matches!(
            sketch.estimate(1.5),
            Err(OpaqError::InvalidPhi(_))
        ));
        assert!(matches!(
            sketch.estimate(f64::NAN),
            Err(OpaqError::InvalidPhi(_))
        ));
        assert!(matches!(
            sketch.estimate_rank(0),
            Err(OpaqError::InvalidPhi(_))
        ));
        assert!(matches!(
            sketch.estimate_rank(101),
            Err(OpaqError::InvalidPhi(_))
        ));
    }

    #[test]
    fn estimate_rank_directly() {
        let data: Vec<u64> = (1..=100).collect();
        let sketch = sketch_of(data, 10, 10);
        // s == m, so every element is a sample and the estimate is exact.
        let est = sketch.estimate_rank(37).unwrap();
        assert_eq!(est.lower, 37);
        assert_eq!(est.upper, 37);
    }
}
