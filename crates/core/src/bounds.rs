//! The paper's closed-form error bounds (§2.2 lemmas and §2.4 RER bounds).
//!
//! These are *a-priori* bounds computable from the configuration alone; the
//! experiments compare them against the measured error rates.

use crate::OpaqConfig;
use serde::{Deserialize, Serialize};

/// Closed-form worst-case guarantees for a given configuration and dataset
/// size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TheoreticalBounds {
    /// Lemma 1/2: maximum number of elements between the true quantile and
    /// either bound (`≤ n/s` for full equal runs).
    pub max_elements_per_bound: u64,
    /// Lemma 3: maximum number of elements between `e_l` and `e_u` (`≤ 2n/s`).
    pub max_elements_between_bounds: u64,
    /// Upper bound on RER_A in percent (`2/s·100`).
    pub rer_a_percent: f64,
    /// Upper bound on RER_L in percent for `q` quantiles (`q/s·100`).
    pub rer_l_percent: f64,
    /// Upper bound on RER_N in percent for `q` quantiles (`q/s·100`).
    pub rer_n_percent: f64,
}

impl TheoreticalBounds {
    /// Compute the bounds for estimating `q`-quantiles of `n` elements with
    /// the given configuration.
    ///
    /// # Panics
    /// Panics if `n == 0` or `q < 2`.
    pub fn new(config: &OpaqConfig, n: u64, q: u64) -> Self {
        assert!(n > 0, "dataset size must be positive");
        assert!(q >= 2, "q must be at least 2");
        let s = config.sample_size;
        let g = config.sub_run_length();
        let r = n.div_ceil(config.run_length);
        let per_bound = g + r.saturating_sub(1) * g.saturating_sub(1);
        Self {
            max_elements_per_bound: per_bound,
            max_elements_between_bounds: 2 * per_bound,
            rer_a_percent: 2.0 / s as f64 * 100.0,
            rer_l_percent: q as f64 / s as f64 * 100.0,
            rer_n_percent: q as f64 / s as f64 * 100.0,
        }
    }

    /// The simple `n/s` statement of the per-bound guarantee (only exact when
    /// all runs are full and `s` divides `m`).
    pub fn n_over_s(n: u64, s: u64) -> u64 {
        assert!(s > 0, "sample size must be positive");
        n / s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpaqConfig;

    #[test]
    fn bounds_match_paper_for_divisible_case() {
        // n = 1M, m = 100k, s = 1000: g = 100, r = 10.
        let config = OpaqConfig::builder()
            .run_length(100_000)
            .sample_size(1000)
            .build()
            .unwrap();
        let b = TheoreticalBounds::new(&config, 1_000_000, 10);
        // per bound = 100 + 9*99 = 991 <= n/s = 1000
        assert_eq!(b.max_elements_per_bound, 991);
        assert!(b.max_elements_per_bound <= TheoreticalBounds::n_over_s(1_000_000, 1000));
        assert_eq!(b.max_elements_between_bounds, 2 * 991);
        assert!((b.rer_a_percent - 0.2).abs() < 1e-12);
        assert!((b.rer_l_percent - 1.0).abs() < 1e-12);
        assert!((b.rer_n_percent - 1.0).abs() < 1e-12);
    }

    #[test]
    fn doubling_s_halves_the_bounds() {
        let c1 = OpaqConfig::builder()
            .run_length(100_000)
            .sample_size(500)
            .build()
            .unwrap();
        let c2 = OpaqConfig::builder()
            .run_length(100_000)
            .sample_size(1000)
            .build()
            .unwrap();
        let b1 = TheoreticalBounds::new(&c1, 1_000_000, 10);
        let b2 = TheoreticalBounds::new(&c2, 1_000_000, 10);
        assert!((b1.rer_a_percent / b2.rer_a_percent - 2.0).abs() < 1e-9);
        assert!(b1.max_elements_per_bound > b2.max_elements_per_bound);
    }

    #[test]
    fn single_run_case() {
        let config = OpaqConfig::builder()
            .run_length(1000)
            .sample_size(100)
            .build()
            .unwrap();
        let b = TheoreticalBounds::new(&config, 1000, 10);
        assert_eq!(b.max_elements_per_bound, 10);
    }

    #[test]
    #[should_panic(expected = "q must be at least 2")]
    fn q_below_two_panics() {
        let config = OpaqConfig::default();
        TheoreticalBounds::new(&config, 100, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_n_panics() {
        let config = OpaqConfig::default();
        TheoreticalBounds::new(&config, 0, 10);
    }
}
