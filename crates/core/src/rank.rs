//! Rank estimation for arbitrary values (§4).
//!
//! "The sorted sample list can obviously be used to estimate the rank of any
//! arbitrary element in the whole data set.  This does not require any extra
//! passes over the entire data set."  Given a value `v`, every sample `≤ v`
//! guarantees `gap` elements `≤ v`; beyond the covered prefix each run can
//! hide at most `g − 1` additional elements `≤ v` before its next sample.

use crate::sketch::QuantileSketch;
use crate::Key;

/// Deterministic bounds on the rank of a value: the number of dataset
/// elements less than or equal to it lies in `[min_rank, max_rank]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankBounds {
    /// Guaranteed minimum number of elements `≤ value`.
    pub min_rank: u64,
    /// Guaranteed maximum number of elements `≤ value`.
    pub max_rank: u64,
}

impl RankBounds {
    /// Width of the rank interval.
    pub fn width(&self) -> u64 {
        self.max_rank - self.min_rank
    }

    /// Midpoint of the interval as a point estimate of the rank.
    pub fn midpoint(&self) -> u64 {
        self.min_rank + self.width() / 2
    }

    /// The corresponding bounds on the quantile fraction `rank / n`.
    pub fn phi_bounds(&self, n: u64) -> (f64, f64) {
        assert!(n > 0, "dataset size must be positive");
        (
            self.min_rank as f64 / n as f64,
            self.max_rank as f64 / n as f64,
        )
    }
}

/// Compute [`RankBounds`] for `value` from a sketch.
pub fn rank_bounds<K: Key>(sketch: &QuantileSketch<K>, value: K) -> RankBounds {
    let samples = sketch.samples();
    let prefix = sketch.prefix_gaps();
    let covered = samples.partition_point(|s| s.value <= value);
    let min_rank = if covered == 0 { 0 } else { prefix[covered - 1] };
    let slack = sketch.runs() * (sketch.max_gap().saturating_sub(1));
    let max_rank = (min_rank + slack).min(sketch.total_elements());
    RankBounds { min_rank, max_rank }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_phase::sample_run;
    use opaq_select::SelectionStrategy;

    fn sketch_of(data: Vec<u64>, m: usize, s: u64) -> QuantileSketch<u64> {
        let run_samples = data
            .chunks(m)
            .map(|chunk| {
                let mut run = chunk.to_vec();
                sample_run(&mut run, s, SelectionStrategy::default()).unwrap()
            })
            .collect();
        QuantileSketch::from_run_samples(run_samples).unwrap()
    }

    #[test]
    fn rank_bounds_enclose_true_rank() {
        let data: Vec<u64> = (0..10_000).map(|i| (i * 48271) % 9973).collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let sketch = sketch_of(data, 1000, 100);
        for value in [0u64, 13, 500, 5000, 9000, 9972, 20_000] {
            let truth = sorted.partition_point(|&x| x <= value) as u64;
            let rb = sketch.rank_bounds(value);
            assert!(
                rb.min_rank <= truth && truth <= rb.max_rank,
                "value {value}: true rank {truth} outside [{}, {}]",
                rb.min_rank,
                rb.max_rank
            );
        }
    }

    #[test]
    fn rank_bound_width_is_limited_by_runs_times_gap() {
        let data: Vec<u64> = (0..10_000).collect();
        let sketch = sketch_of(data, 1000, 100);
        let rb = sketch.rank_bounds(5000);
        // r = 10 runs, g = 10 -> width <= 10 * 9 = 90.
        assert!(rb.width() <= 90, "width {}", rb.width());
    }

    #[test]
    fn value_below_everything_has_zero_min_rank() {
        let data: Vec<u64> = (100..200).collect();
        let sketch = sketch_of(data, 50, 10);
        let rb = sketch.rank_bounds(5);
        assert_eq!(rb.min_rank, 0);
        assert!(
            rb.max_rank <= 10,
            "only per-run slack remains: {}",
            rb.max_rank
        );
    }

    #[test]
    fn value_above_everything_has_full_rank() {
        let data: Vec<u64> = (0..100).collect();
        let sketch = sketch_of(data, 50, 10);
        let rb = sketch.rank_bounds(1_000_000);
        assert_eq!(rb.min_rank, 100);
        assert_eq!(rb.max_rank, 100);
    }

    #[test]
    fn helpers() {
        let rb = RankBounds {
            min_rank: 10,
            max_rank: 30,
        };
        assert_eq!(rb.width(), 20);
        assert_eq!(rb.midpoint(), 20);
        let (lo, hi) = rb.phi_bounds(100);
        assert!((lo - 0.1).abs() < 1e-12 && (hi - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn phi_bounds_zero_n_panics() {
        RankBounds {
            min_rank: 0,
            max_rank: 0,
        }
        .phi_bounds(0);
    }
}
