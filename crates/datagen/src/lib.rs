//! Workload generators for the OPAQ reproduction.
//!
//! The paper's experiments (§2.4, §3.1) use data sets of 1, 5 and 10 million
//! keys (up to 32 million in the parallel runs), drawn from either a uniform
//! distribution or a Zipf distribution with parameter 0.86, with `n/10`
//! duplicate keys injected.  This crate reproduces those workloads and adds a
//! few adversarial orderings used by the extended test suite:
//!
//! * [`UniformGenerator`] — i.i.d. uniform keys over a configurable domain.
//! * [`ZipfGenerator`] — Zipf-distributed keys via Hörmann's
//!   rejection-inversion sampling; the paper's "parameter" convention
//!   (1 = uniform, 0 = maximally skewed) is supported directly.
//! * [`NormalGenerator`] — Gaussian keys (clamped to the domain), for
//!   distribution-robustness tests beyond the paper.
//! * [`patterns`] — deterministic adversarial orders: sorted, reverse sorted,
//!   organ pipe, constant.
//! * [`duplicates`] — duplicate injection matching the paper's `n/10` rule.
//! * [`DatasetSpec`] — a serializable description of a workload
//!   (distribution + size + seed + duplicate fraction) that the experiment
//!   harness uses to label its tables.
//!
//! All generators are deterministic functions of their seed so every
//! experiment in EXPERIMENTS.md can be reproduced bit-for-bit.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod duplicates;
pub mod normal;
pub mod patterns;
pub mod spec;
pub mod uniform;
pub mod zipf;

pub use duplicates::{count_duplicated_elements, inject_duplicates};
pub use normal::NormalGenerator;
pub use patterns::{Pattern, PatternGenerator};
pub use spec::{DatasetSpec, Distribution};
pub use uniform::UniformGenerator;
pub use zipf::ZipfGenerator;

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A source of synthetic keys.
///
/// Generators are infinite: `generate(n)` yields any requested number of
/// keys, deterministically derived from the generator's seed.
pub trait KeyGenerator {
    /// Produce the next `n` keys.
    fn generate(&mut self, n: usize) -> Vec<u64>;

    /// A short human-readable label used in experiment tables
    /// (e.g. `"uniform"`, `"zipf(0.86)"`).
    fn label(&self) -> String;
}

/// Construct the deterministic RNG used by all generators in this crate.
pub(crate) fn rng_from_seed(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = UniformGenerator::new(7, 1 << 20).generate(1000);
        let b = UniformGenerator::new(7, 1 << 20).generate(1000);
        assert_eq!(a, b);
        let a = ZipfGenerator::from_paper_parameter(7, 1 << 20, 0.86).generate(1000);
        let b = ZipfGenerator::from_paper_parameter(7, 1 << 20, 0.86).generate(1000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = UniformGenerator::new(1, 1 << 20).generate(100);
        let b = UniformGenerator::new(2, 1 << 20).generate(100);
        assert_ne!(a, b);
    }
}
