//! Normally distributed keys (Box–Muller), clamped to the key domain.
//!
//! Not part of the paper's evaluation, but used by the extended robustness
//! tests: OPAQ's bounds are distribution-free, so a third distribution is a
//! cheap way to exercise that claim.

use crate::{rng_from_seed, KeyGenerator};
use rand::rngs::SmallRng;
use rand::Rng;

/// Generates keys from a normal distribution with the given mean and
/// standard deviation, rounded and clamped to `[0, domain)`.
#[derive(Debug, Clone)]
pub struct NormalGenerator {
    rng: SmallRng,
    domain: u64,
    mean: f64,
    std_dev: f64,
    spare: Option<f64>,
}

impl NormalGenerator {
    /// Create a generator with `mean` and `std_dev` over `[0, domain)`.
    ///
    /// # Panics
    /// Panics if `domain == 0` or `std_dev <= 0`.
    pub fn new(seed: u64, domain: u64, mean: f64, std_dev: f64) -> Self {
        assert!(domain > 0, "key domain must be non-empty");
        assert!(std_dev > 0.0, "standard deviation must be positive");
        Self {
            rng: rng_from_seed(seed),
            domain,
            mean,
            std_dev,
            spare: None,
        }
    }

    /// A generator centred in the middle of the domain with a spread of one
    /// eighth of the domain (keeps clamping negligible).
    pub fn centred(seed: u64, domain: u64) -> Self {
        Self::new(seed, domain, domain as f64 / 2.0, domain as f64 / 8.0)
    }

    fn sample_standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller transform.
        loop {
            let u1: f64 = self.rng.gen::<f64>();
            let u2: f64 = self.rng.gen::<f64>();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.spare = Some(r * theta.sin());
            return r * theta.cos();
        }
    }
}

impl KeyGenerator for NormalGenerator {
    fn generate(&mut self, n: usize) -> Vec<u64> {
        (0..n)
            .map(|_| {
                let x = self.mean + self.std_dev * self.sample_standard_normal();
                x.round().clamp(0.0, (self.domain - 1) as f64) as u64
            })
            .collect()
    }

    fn label(&self) -> String {
        "normal".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_stay_in_domain() {
        let keys = NormalGenerator::centred(1, 10_000).generate(20_000);
        assert!(keys.iter().all(|&k| k < 10_000));
    }

    #[test]
    fn empirical_mean_close_to_requested() {
        let keys = NormalGenerator::new(2, 1_000_000, 400_000.0, 50_000.0).generate(100_000);
        let mean = keys.iter().map(|&k| k as f64).sum::<f64>() / keys.len() as f64;
        assert!((mean - 400_000.0).abs() < 2_000.0, "mean {mean}");
    }

    #[test]
    fn empirical_std_dev_close_to_requested() {
        let keys = NormalGenerator::new(3, 1_000_000, 500_000.0, 30_000.0).generate(100_000);
        let mean = keys.iter().map(|&k| k as f64).sum::<f64>() / keys.len() as f64;
        let var = keys.iter().map(|&k| (k as f64 - mean).powi(2)).sum::<f64>() / keys.len() as f64;
        let sd = var.sqrt();
        assert!((sd - 30_000.0).abs() < 1_500.0, "sd {sd}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_std_dev_panics() {
        NormalGenerator::new(0, 10, 5.0, 0.0);
    }

    #[test]
    fn deterministic() {
        let a = NormalGenerator::centred(7, 1 << 20).generate(100);
        let b = NormalGenerator::centred(7, 1 << 20).generate(100);
        assert_eq!(a, b);
    }
}
