//! Deterministic adversarial key orders.
//!
//! OPAQ's error bounds do not depend on the input *order*, but its substrate
//! algorithms (selection, merging) historically have order-sensitive worst
//! cases; these generators exercise them.

use crate::KeyGenerator;

/// Which deterministic pattern to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// `0, 1, 2, …` — already sorted.
    Sorted,
    /// `n-1, n-2, …, 0` — reverse sorted.
    ReverseSorted,
    /// `0, 1, …, k, k, …, 1, 0` — ascending then descending ("organ pipe").
    OrganPipe,
    /// All keys equal to a constant.
    Constant(u64),
    /// `0, k, 1, k+1, …` — two interleaved sorted sequences ("sawtooth").
    Sawtooth,
}

/// Generates one of the deterministic [`Pattern`]s.
#[derive(Debug, Clone)]
pub struct PatternGenerator {
    pattern: Pattern,
    emitted: u64,
}

impl PatternGenerator {
    /// Create a generator for `pattern`.
    pub fn new(pattern: Pattern) -> Self {
        Self {
            pattern,
            emitted: 0,
        }
    }

    fn key_at(&self, i: u64, n_hint: u64) -> u64 {
        match self.pattern {
            Pattern::Sorted => i,
            Pattern::ReverseSorted => u64::MAX - i,
            Pattern::OrganPipe => {
                let half = n_hint / 2;
                if i < half {
                    i
                } else {
                    n_hint.saturating_sub(i + 1)
                }
            }
            Pattern::Constant(c) => c,
            Pattern::Sawtooth => {
                if i.is_multiple_of(2) {
                    i / 2
                } else {
                    (1 << 32) + i / 2
                }
            }
        }
    }
}

impl KeyGenerator for PatternGenerator {
    fn generate(&mut self, n: usize) -> Vec<u64> {
        let start = self.emitted;
        let total_hint = start + n as u64;
        let out = (0..n as u64)
            .map(|i| self.key_at(start + i, total_hint))
            .collect();
        self.emitted += n as u64;
        out
    }

    fn label(&self) -> String {
        match self.pattern {
            Pattern::Sorted => "sorted".into(),
            Pattern::ReverseSorted => "reverse-sorted".into(),
            Pattern::OrganPipe => "organ-pipe".into(),
            Pattern::Constant(_) => "constant".into(),
            Pattern::Sawtooth => "sawtooth".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_is_sorted() {
        let keys = PatternGenerator::new(Pattern::Sorted).generate(1000);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn reverse_sorted_is_descending() {
        let keys = PatternGenerator::new(Pattern::ReverseSorted).generate(1000);
        assert!(keys.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn constant_is_constant() {
        let keys = PatternGenerator::new(Pattern::Constant(9)).generate(100);
        assert!(keys.iter().all(|&k| k == 9));
    }

    #[test]
    fn organ_pipe_rises_then_falls() {
        let keys = PatternGenerator::new(Pattern::OrganPipe).generate(10);
        assert_eq!(keys, vec![0, 1, 2, 3, 4, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn sawtooth_interleaves_two_sorted_streams() {
        let keys = PatternGenerator::new(Pattern::Sawtooth).generate(6);
        assert_eq!(keys, vec![0, 1 << 32, 1, (1 << 32) + 1, 2, (1 << 32) + 2]);
    }

    #[test]
    fn labels() {
        assert_eq!(PatternGenerator::new(Pattern::Sorted).label(), "sorted");
        assert_eq!(
            PatternGenerator::new(Pattern::Constant(0)).label(),
            "constant"
        );
    }
}
