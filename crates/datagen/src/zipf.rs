//! Zipf-distributed keys via rejection-inversion sampling.
//!
//! The paper describes its skew knob as: "The data set corresponds to a
//! uniform distribution when the parameter is set to one.  The level of skew
//! increases as the value of this parameter decreases. … We chose 0.86 as the
//! Zipf distribution parameter."  We therefore expose both the conventional
//! Zipf exponent `theta` (0 = uniform, larger = more skew) and the paper's
//! parameter `p` through the mapping `theta = 1 - p`.

use crate::{rng_from_seed, KeyGenerator};
use rand::rngs::SmallRng;
use rand::Rng;

/// Generates keys in `[0, domain)` where rank `k` (1-based) has probability
/// proportional to `1 / k^theta`.
///
/// Sampling uses Hörmann & Derflinger's rejection-inversion method (the same
/// scheme as Apache Commons' `RejectionInversionZipfSampler`), which needs
/// O(1) setup and O(1) expected time per sample for any `theta >= 0`, so
/// even the 32-million-key parallel workloads generate quickly.
#[derive(Debug, Clone)]
pub struct ZipfGenerator {
    rng: SmallRng,
    domain: u64,
    theta: f64,
    paper_parameter: Option<f64>,
    // Precomputed constants for rejection-inversion (unused when theta == 0).
    h_integral_x1: f64,
    h_integral_n: f64,
    s: f64,
}

impl ZipfGenerator {
    /// Create a generator with Zipf exponent `theta` (conventional form:
    /// `theta = 0` is uniform, larger values are more skewed).
    ///
    /// # Panics
    /// Panics if `domain == 0`, `theta < 0`, or `theta` is not finite.
    pub fn new(seed: u64, domain: u64, theta: f64) -> Self {
        assert!(domain > 0, "key domain must be non-empty");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "zipf exponent must be finite and >= 0"
        );
        let n = domain as f64;
        let (h_integral_x1, h_integral_n, s) = if theta > 0.0 {
            (
                h_integral(1.5, theta) - 1.0,
                h_integral(n + 0.5, theta),
                2.0 - h_integral_inverse(h_integral(2.5, theta) - h(2.0, theta), theta),
            )
        } else {
            (0.0, 0.0, 0.0)
        };
        Self {
            rng: rng_from_seed(seed),
            domain,
            theta,
            paper_parameter: None,
            h_integral_x1,
            h_integral_n,
            s,
        }
    }

    /// Create a generator using the paper's parameter convention
    /// (`p = 1` → uniform, `p = 0` → maximal skew): the exponent is `1 - p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]` or `domain == 0`.
    pub fn from_paper_parameter(seed: u64, domain: u64, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "paper Zipf parameter must be in [0, 1]"
        );
        let mut g = Self::new(seed, domain, 1.0 - p);
        g.paper_parameter = Some(p);
        g
    }

    /// The conventional Zipf exponent in use.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw a single 1-based Zipf rank in `[1, domain]`.
    fn sample_rank(&mut self) -> u64 {
        if self.theta == 0.0 {
            return self.rng.gen_range(0..self.domain) + 1;
        }
        let theta = self.theta;
        let n = self.domain as f64;
        loop {
            let u: f64 = self.h_integral_n
                + self.rng.gen::<f64>() * (self.h_integral_x1 - self.h_integral_n);
            let x = h_integral_inverse(u, theta);
            let k = x.round().clamp(1.0, n);
            if k - x <= self.s || u >= h_integral(k + 0.5, theta) - h(k, theta) {
                return k as u64;
            }
        }
    }
}

/// `H(x) = (x^(1-theta) - 1) / (1 - theta)`, with the `theta == 1`
/// singularity handled as `ln(x)` (computed in the numerically stable
/// `helper2` form used by Hörmann & Derflinger).
fn h_integral(x: f64, theta: f64) -> f64 {
    let logx = x.ln();
    helper2((1.0 - theta) * logx) * logx
}

/// `h(x) = x^(-theta)`.
fn h(x: f64, theta: f64) -> f64 {
    (-theta * x.ln()).exp()
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(x: f64, theta: f64) -> f64 {
    let mut t = x * (1.0 - theta);
    if t < -1.0 {
        // Guard against numerical round-off (same guard as Commons RNG).
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// `helper1(x) = ln(1+x)/x`, numerically stable near zero.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `helper2(x) = (exp(x)-1)/x`, numerically stable near zero.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

impl KeyGenerator for ZipfGenerator {
    fn generate(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.sample_rank() - 1).collect()
    }

    fn label(&self) -> String {
        match self.paper_parameter {
            Some(p) => format!("zipf({p:.2})"),
            None => format!("zipf[theta={:.2}]", self.theta),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_stay_in_domain() {
        let keys = ZipfGenerator::new(3, 10_000, 0.9).generate(50_000);
        assert!(keys.iter().all(|&k| k < 10_000));
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let domain = 100_000u64;
        let keys = ZipfGenerator::new(5, domain, 0.0).generate(100_000);
        let mean = keys.iter().map(|&k| k as f64).sum::<f64>() / keys.len() as f64;
        assert!((mean - domain as f64 / 2.0).abs() < domain as f64 * 0.02);
    }

    #[test]
    fn high_theta_is_heavily_skewed_to_small_ranks() {
        let keys = ZipfGenerator::new(5, 1_000_000, 1.2).generate(50_000);
        let small = keys.iter().filter(|&&k| k < 100).count();
        assert!(
            small > keys.len() / 2,
            "with theta=1.2 most mass should be on the first 100 ranks, got {small}"
        );
    }

    #[test]
    fn more_skew_means_more_mass_on_low_ranks() {
        let count_low = |theta: f64| {
            ZipfGenerator::new(11, 100_000, theta)
                .generate(50_000)
                .iter()
                .filter(|&&k| k < 1000)
                .count()
        };
        let mild = count_low(0.14); // paper's 0.86 in their convention
        let strong = count_low(0.95);
        assert!(strong > mild, "strong skew {strong} <= mild skew {mild}");
    }

    #[test]
    fn zipf_rank_one_frequency_matches_theory() {
        // With theta = 1 and domain = 1000, P(rank 1) = 1 / H_1000 ≈ 0.1336.
        let n = 200_000usize;
        let keys = ZipfGenerator::new(8, 1000, 1.0).generate(n);
        let p1 = keys.iter().filter(|&&k| k == 0).count() as f64 / n as f64;
        let harmonic: f64 = (1..=1000u64).map(|k| 1.0 / k as f64).sum();
        let expected = 1.0 / harmonic;
        assert!(
            (p1 - expected).abs() < 0.01,
            "empirical P(rank 1) = {p1:.4}, expected {expected:.4}"
        );
    }

    #[test]
    fn paper_parameter_mapping() {
        let g = ZipfGenerator::from_paper_parameter(1, 100, 0.86);
        assert!((g.theta() - 0.14).abs() < 1e-12);
        assert_eq!(g.label(), "zipf(0.86)");
        let g = ZipfGenerator::from_paper_parameter(1, 100, 1.0);
        assert_eq!(g.theta(), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn bad_paper_parameter_panics() {
        ZipfGenerator::from_paper_parameter(0, 10, 1.5);
    }
}
