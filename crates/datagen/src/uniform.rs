//! Uniformly distributed keys.

use crate::{rng_from_seed, KeyGenerator};
use rand::rngs::SmallRng;
use rand::Rng;

/// Generates i.i.d. keys uniform over `[0, domain)`.
#[derive(Debug, Clone)]
pub struct UniformGenerator {
    rng: SmallRng,
    domain: u64,
}

impl UniformGenerator {
    /// Create a generator with the given `seed` over `[0, domain)`.
    ///
    /// # Panics
    /// Panics if `domain == 0`.
    pub fn new(seed: u64, domain: u64) -> Self {
        assert!(domain > 0, "key domain must be non-empty");
        Self {
            rng: rng_from_seed(seed),
            domain,
        }
    }

    /// The key domain size.
    pub fn domain(&self) -> u64 {
        self.domain
    }
}

impl KeyGenerator for UniformGenerator {
    fn generate(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.rng.gen_range(0..self.domain)).collect()
    }

    fn label(&self) -> String {
        "uniform".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_stay_in_domain() {
        let keys = UniformGenerator::new(42, 1000).generate(10_000);
        assert!(keys.iter().all(|&k| k < 1000));
        assert_eq!(keys.len(), 10_000);
    }

    #[test]
    fn roughly_uniform_mean() {
        let domain = 1_000_000u64;
        let keys = UniformGenerator::new(1, domain).generate(200_000);
        let mean = keys.iter().copied().map(|k| k as f64).sum::<f64>() / keys.len() as f64;
        let expected = domain as f64 / 2.0;
        assert!(
            (mean - expected).abs() < expected * 0.02,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn successive_calls_continue_the_stream() {
        let mut g = UniformGenerator::new(9, 1 << 30);
        let first = g.generate(50);
        let second = g.generate(50);
        assert_ne!(first, second);
        let mut h = UniformGenerator::new(9, 1 << 30);
        let both = h.generate(100);
        assert_eq!(&both[..50], &first[..]);
        assert_eq!(&both[50..], &second[..]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_domain_panics() {
        UniformGenerator::new(0, 0);
    }

    #[test]
    fn label() {
        assert_eq!(UniformGenerator::new(0, 10).label(), "uniform");
    }
}
