//! Duplicate injection.
//!
//! The paper's experiments set "the number of duplicates for each data set of
//! size n … to n/10" to study the impact of repeated keys on estimation
//! accuracy.  [`inject_duplicates`] reproduces that: a chosen fraction of
//! positions is overwritten with values copied from other (random) positions,
//! guaranteeing at least that many duplicate keys while leaving the overall
//! distribution essentially unchanged.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Overwrite `fraction` of the positions of `keys` with values copied from
/// other random positions.  Returns the number of positions overwritten.
///
/// # Panics
/// Panics if `fraction` is not in `[0, 1]`.
pub fn inject_duplicates(keys: &mut [u64], fraction: f64, seed: u64) -> usize {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "duplicate fraction must be in [0, 1]"
    );
    if keys.len() < 2 || fraction == 0.0 {
        return 0;
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1CE_D1CE_D1CE_D1CE);
    let count = ((keys.len() as f64) * fraction).round() as usize;
    let count = count.min(keys.len());
    for _ in 0..count {
        let dst = rng.gen_range(0..keys.len());
        let src = rng.gen_range(0..keys.len());
        keys[dst] = keys[src];
    }
    count
}

/// Count how many elements of `keys` share their value with at least one
/// other element (a simple duplicate metric used in tests and reports).
pub fn count_duplicated_elements(keys: &[u64]) -> usize {
    let mut sorted = keys.to_vec();
    sorted.sort_unstable();
    let mut dup = 0usize;
    let mut i = 0usize;
    while i < sorted.len() {
        let mut j = i + 1;
        while j < sorted.len() && sorted[j] == sorted[i] {
            j += 1;
        }
        if j - i > 1 {
            dup += j - i;
        }
        i = j;
    }
    dup
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injects_requested_count() {
        let mut keys: Vec<u64> = (0..10_000).collect();
        let written = inject_duplicates(&mut keys, 0.1, 42);
        assert_eq!(written, 1000);
        // At least some duplication must now exist (distinct values before).
        assert!(count_duplicated_elements(&keys) > 0);
    }

    #[test]
    fn zero_fraction_is_noop() {
        let mut keys: Vec<u64> = (0..100).collect();
        let orig = keys.clone();
        assert_eq!(inject_duplicates(&mut keys, 0.0, 1), 0);
        assert_eq!(keys, orig);
    }

    #[test]
    fn full_fraction_caps_at_len() {
        let mut keys: Vec<u64> = (0..50).collect();
        assert_eq!(inject_duplicates(&mut keys, 1.0, 1), 50);
    }

    #[test]
    fn tiny_inputs_are_safe() {
        let mut one = vec![5u64];
        assert_eq!(inject_duplicates(&mut one, 0.5, 0), 0);
        let mut empty: Vec<u64> = vec![];
        assert_eq!(inject_duplicates(&mut empty, 0.5, 0), 0);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn bad_fraction_panics() {
        inject_duplicates(&mut [1, 2, 3], 1.5, 0);
    }

    #[test]
    fn count_duplicated_elements_counts_all_members() {
        assert_eq!(count_duplicated_elements(&[1, 2, 3]), 0);
        assert_eq!(count_duplicated_elements(&[1, 1, 2, 3]), 2);
        assert_eq!(count_duplicated_elements(&[7, 7, 7]), 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a: Vec<u64> = (0..1000).collect();
        let mut b: Vec<u64> = (0..1000).collect();
        inject_duplicates(&mut a, 0.1, 99);
        inject_duplicates(&mut b, 0.1, 99);
        assert_eq!(a, b);
    }
}
