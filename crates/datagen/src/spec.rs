//! Serializable workload descriptions.
//!
//! The experiment harness (crate `opaq-bench`) sweeps over data sizes,
//! distributions and duplicate fractions; [`DatasetSpec`] captures one cell
//! of such a sweep so that every table row in EXPERIMENTS.md is labelled with
//! the exact workload that produced it.

use crate::patterns::{Pattern, PatternGenerator};
use crate::{inject_duplicates, KeyGenerator, NormalGenerator, UniformGenerator, ZipfGenerator};
use serde::{Deserialize, Serialize};

/// The key distribution of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Uniform over `[0, domain)`.
    Uniform {
        /// Key domain size.
        domain: u64,
    },
    /// Zipf with the paper's parameter convention (1 = uniform, 0 = maximal
    /// skew); the paper uses 0.86.
    Zipf {
        /// Key domain size.
        domain: u64,
        /// Paper-convention skew parameter in `[0, 1]`.
        parameter: f64,
    },
    /// Normal with the given mean and standard deviation, clamped to the domain.
    Normal {
        /// Key domain size.
        domain: u64,
        /// Mean of the distribution.
        mean: f64,
        /// Standard deviation of the distribution.
        std_dev: f64,
    },
    /// A deterministic adversarial pattern.
    Sorted,
    /// Reverse-sorted deterministic pattern.
    ReverseSorted,
    /// Organ-pipe deterministic pattern.
    OrganPipe,
    /// All keys identical.
    Constant(u64),
}

/// A complete workload description: distribution, size, duplicates and seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Number of keys to generate.
    pub n: u64,
    /// Key distribution.
    pub distribution: Distribution,
    /// Fraction of positions overwritten with copies of other keys
    /// (the paper uses 0.1, i.e. `n/10` duplicates).
    pub duplicate_fraction: f64,
    /// RNG seed; every generated dataset is a pure function of the spec.
    pub seed: u64,
}

impl DatasetSpec {
    /// The paper's standard sequential workload: `n` keys, uniform over a
    /// 32-bit-ish domain, `n/10` duplicates.
    pub fn paper_uniform(n: u64, seed: u64) -> Self {
        Self {
            n,
            distribution: Distribution::Uniform { domain: 1 << 31 },
            duplicate_fraction: 0.1,
            seed,
        }
    }

    /// The paper's standard skewed workload: Zipf with parameter 0.86.
    pub fn paper_zipf(n: u64, seed: u64) -> Self {
        Self {
            n,
            distribution: Distribution::Zipf {
                domain: 1 << 31,
                parameter: 0.86,
            },
            duplicate_fraction: 0.1,
            seed,
        }
    }

    /// Generate the dataset described by this spec.
    pub fn generate(&self) -> Vec<u64> {
        let n = self.n as usize;
        let mut keys = match self.distribution {
            Distribution::Uniform { domain } => {
                UniformGenerator::new(self.seed, domain).generate(n)
            }
            Distribution::Zipf { domain, parameter } => {
                ZipfGenerator::from_paper_parameter(self.seed, domain, parameter).generate(n)
            }
            Distribution::Normal {
                domain,
                mean,
                std_dev,
            } => NormalGenerator::new(self.seed, domain, mean, std_dev).generate(n),
            Distribution::Sorted => PatternGenerator::new(Pattern::Sorted).generate(n),
            Distribution::ReverseSorted => {
                PatternGenerator::new(Pattern::ReverseSorted).generate(n)
            }
            Distribution::OrganPipe => PatternGenerator::new(Pattern::OrganPipe).generate(n),
            Distribution::Constant(c) => PatternGenerator::new(Pattern::Constant(c)).generate(n),
        };
        inject_duplicates(&mut keys, self.duplicate_fraction, self.seed);
        keys
    }

    /// A short label for experiment tables, e.g. `"uniform"` or `"zipf(0.86)"`.
    pub fn label(&self) -> String {
        match self.distribution {
            Distribution::Uniform { .. } => "uniform".to_string(),
            Distribution::Zipf { parameter, .. } => format!("zipf({parameter:.2})"),
            Distribution::Normal { .. } => "normal".to_string(),
            Distribution::Sorted => "sorted".to_string(),
            Distribution::ReverseSorted => "reverse-sorted".to_string(),
            Distribution::OrganPipe => "organ-pipe".to_string(),
            Distribution::Constant(_) => "constant".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duplicates::count_duplicated_elements;

    #[test]
    fn paper_uniform_spec_generates_n_keys_with_duplicates() {
        let spec = DatasetSpec::paper_uniform(10_000, 3);
        let keys = spec.generate();
        assert_eq!(keys.len(), 10_000);
        assert!(
            count_duplicated_elements(&keys) >= 1000 / 2,
            "duplicates injected"
        );
        assert_eq!(spec.label(), "uniform");
    }

    #[test]
    fn paper_zipf_spec_label_and_determinism() {
        let spec = DatasetSpec::paper_zipf(5_000, 11);
        assert_eq!(spec.label(), "zipf(0.86)");
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn deterministic_patterns_ignore_duplicate_injection_gracefully() {
        let spec = DatasetSpec {
            n: 100,
            distribution: Distribution::Constant(5),
            duplicate_fraction: 0.1,
            seed: 0,
        };
        let keys = spec.generate();
        assert!(keys.iter().all(|&k| k == 5));
    }

    #[test]
    fn all_distributions_generate_requested_length() {
        for dist in [
            Distribution::Uniform { domain: 1000 },
            Distribution::Zipf {
                domain: 1000,
                parameter: 0.86,
            },
            Distribution::Normal {
                domain: 1000,
                mean: 500.0,
                std_dev: 100.0,
            },
            Distribution::Sorted,
            Distribution::ReverseSorted,
            Distribution::OrganPipe,
            Distribution::Constant(3),
        ] {
            let spec = DatasetSpec {
                n: 777,
                distribution: dist,
                duplicate_fraction: 0.05,
                seed: 1,
            };
            assert_eq!(spec.generate().len(), 777, "{dist:?}");
        }
    }

    #[test]
    fn spec_serde_round_trip() {
        // serde is exercised via the Serialize/Deserialize derives without a
        // JSON dependency: a manual token-ish check through the Debug path is
        // not enough, so round-trip through the `serde` `Value`-free path:
        // here we simply assert the derives exist by using them generically.
        fn assert_serde<T: serde::Serialize + for<'a> serde::Deserialize<'a>>() {}
        assert_serde::<DatasetSpec>();
        assert_serde::<Distribution>();
    }
}
