//! Per-shard ingestion statistics for the sharded (multi-threaded) OPAQ
//! ingest path.
//!
//! The sharded ingester in `opaq-parallel` fans runs out to worker threads;
//! each worker reports how many runs and elements it absorbed, how long it
//! spent sampling/merging ([`ShardStats::busy`]) and how long it sat idle
//! waiting for the dispatcher to hand it a run ([`ShardStats::starved`]).
//! A high starved fraction across all shards means ingestion is I/O-bound
//! (adding threads will not help); a low one means the sampling CPU work is
//! the bottleneck and more shards scale it — the same diagnostic the paper's
//! Table 11/12 I/O-fraction analysis provides for the sequential algorithm.

use crate::TextTable;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// What one ingestion shard (worker thread) did.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index (also the deterministic merge-tree position).
    pub shard: usize,
    /// Number of store runs this shard absorbed.
    pub runs: u64,
    /// Number of data elements this shard absorbed.
    pub elements: u64,
    /// Number of sample points in the shard's local sketch.
    pub sample_points: usize,
    /// Wall-clock time spent sampling runs and merging sample lists.
    pub busy: Duration,
    /// Wall-clock time spent blocked on the dispatcher (I/O starvation).
    pub starved: Duration,
}

impl ShardStats {
    /// Fraction of this shard's wall-clock spent starved for input
    /// (0 when the shard never waited).
    pub fn starved_fraction(&self) -> f64 {
        let total = self.busy + self.starved;
        if total.is_zero() {
            0.0
        } else {
            self.starved.as_secs_f64() / total.as_secs_f64()
        }
    }
}

/// Render per-shard statistics as a fixed-width table (one row per shard
/// plus a totals row), for the CLI and the experiment binaries.
pub fn render_shard_table(stats: &[ShardStats]) -> String {
    let mut table = TextTable::new(format!("sharded ingest ({} shards)", stats.len())).header([
        "shard",
        "runs",
        "elements",
        "samples",
        "busy",
        "starved",
        "starved %",
    ]);
    for s in stats {
        table.row([
            s.shard.to_string(),
            s.runs.to_string(),
            s.elements.to_string(),
            s.sample_points.to_string(),
            format!("{:?}", s.busy),
            format!("{:?}", s.starved),
            format!("{:.1}", s.starved_fraction() * 100.0),
        ]);
    }
    let total_runs: u64 = stats.iter().map(|s| s.runs).sum();
    let total_elements: u64 = stats.iter().map(|s| s.elements).sum();
    let total_samples: usize = stats.iter().map(|s| s.sample_points).sum();
    let total_busy: Duration = stats.iter().map(|s| s.busy).sum();
    let total_starved: Duration = stats.iter().map(|s| s.starved).sum();
    table.row([
        "all".to_string(),
        total_runs.to_string(),
        total_elements.to_string(),
        total_samples.to_string(),
        format!("{total_busy:?}"),
        format!("{total_starved:?}"),
        String::new(),
    ]);
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(shard: usize, busy_ms: u64, starved_ms: u64) -> ShardStats {
        ShardStats {
            shard,
            runs: 4,
            elements: 4_000,
            sample_points: 400,
            busy: Duration::from_millis(busy_ms),
            starved: Duration::from_millis(starved_ms),
        }
    }

    #[test]
    fn starved_fraction_bounds() {
        assert_eq!(stat(0, 0, 0).starved_fraction(), 0.0);
        assert!((stat(0, 75, 25).starved_fraction() - 0.25).abs() < 1e-9);
        assert_eq!(stat(0, 0, 10).starved_fraction(), 1.0);
    }

    #[test]
    fn multi_digit_shard_counts_stay_aligned() {
        // 12 shards: indices go two-digit and the busy/starved columns mix
        // `ms` and `µs` debug formats; every rendered line must still have
        // the same printable width.
        let stats: Vec<ShardStats> = (0..12)
            .map(|i| ShardStats {
                shard: i,
                runs: 10 + i as u64,
                elements: 1_000 * (i as u64 + 1),
                sample_points: 100,
                busy: Duration::from_micros(950 + 137 * i as u64),
                starved: Duration::from_micros(7 * i as u64),
            })
            .collect();
        let rendered = render_shard_table(&stats);
        assert!(rendered.contains("12 shards"));
        assert!(rendered.contains("11"), "two-digit shard index present");
        let widths: Vec<usize> = rendered
            .lines()
            .skip(1) // title
            .map(|l| l.chars().count())
            .collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "shard table misaligned: {widths:?}\n{rendered}"
        );
    }

    #[test]
    fn table_lists_every_shard_and_totals() {
        let rendered = render_shard_table(&[stat(0, 10, 1), stat(1, 12, 2)]);
        assert!(rendered.contains("sharded ingest (2 shards)"));
        assert!(rendered.contains("starved"));
        // One row per shard plus the totals row.
        assert!(rendered.lines().any(|l| l.trim_start().starts_with("0 ")));
        assert!(rendered.lines().any(|l| l.trim_start().starts_with("1 ")));
        assert!(rendered.lines().any(|l| l.trim_start().starts_with("all")));
        assert!(rendered.contains("8000"));
    }
}
