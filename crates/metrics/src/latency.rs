//! Lock-free latency/throughput histograms for the sketch-serving layer.
//!
//! The serving subsystem (`opaq-serve`) answers quantile queries from many
//! client threads at once, so its latency instrumentation must be cheap and
//! contention-free: [`LatencyHistogram::record`] is a handful of relaxed
//! atomic operations, safe to share behind an `Arc` across any number of
//! threads with no locking.
//!
//! The histogram uses HdrHistogram-style log-linear buckets: values below
//! [`SUB_BUCKETS`] nanoseconds are counted exactly, and every power-of-two
//! range above that is split into [`SUB_BUCKETS`] linear sub-buckets, so the
//! relative error of a reported quantile is at most `1/SUB_BUCKETS`
//! (≈ 6 % with 16 sub-buckets) across the full `u64` nanosecond range.
//! Fittingly, reading a latency percentile out of the recorded histogram is
//! itself a quantile-phase lookup — the same shape of computation the served
//! sketches perform.

use crate::TextTable;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per power-of-two range (relative error ≤ 1/16).
pub const SUB_BUCKETS: u64 = 16;

const SUB_SHIFT: u32 = 4; // log2(SUB_BUCKETS)
const BUCKETS: usize = ((64 - SUB_SHIFT as usize) + 1) * SUB_BUCKETS as usize;

/// Map a nanosecond value to its bucket index.
fn bucket_index(nanos: u64) -> usize {
    if nanos < SUB_BUCKETS {
        return nanos as usize;
    }
    let exp = 63 - nanos.leading_zeros(); // >= SUB_SHIFT
    let shift = exp - SUB_SHIFT;
    let sub = (nanos >> shift) & (SUB_BUCKETS - 1);
    (((exp - SUB_SHIFT + 1) as u64 * SUB_BUCKETS) + sub) as usize
}

/// Largest nanosecond value that maps into bucket `index` (the value the
/// quantile queries report, so estimates err on the conservative side).
fn bucket_upper_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let range = index / SUB_BUCKETS - 1; // 0 = [16, 32)
    let sub = index % SUB_BUCKETS;
    let shift = range as u32;
    let base = SUB_BUCKETS << shift;
    let width = 1u64 << shift;
    // The top bucket's exclusive end is 2^64: saturate instead of
    // overflowing (reachable — `record` clamps huge durations to u64::MAX).
    base.checked_add((sub + 1) * width)
        .map_or(u64::MAX, |end| end - 1)
}

/// A thread-safe log-linear histogram of operation latencies.
///
/// All methods take `&self`; recording uses only relaxed atomics, so one
/// histogram can be shared behind an `Arc` by every client thread of a
/// serving workload.  Reads ([`Self::quantile`], [`Self::snapshot`]) are
/// weakly consistent under concurrent writes — fine for reporting.
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
    min_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .field("max", &self.max())
            .finish()
    }
}

impl LatencyHistogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            total_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
            min_nanos: AtomicU64::new(u64::MAX),
        }
    }

    /// Record one operation latency.
    pub fn record(&self, latency: Duration) {
        self.record_nanos(latency.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record one operation latency given in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        self.min_nanos.fetch_min(nanos, Ordering::Relaxed);
    }

    /// Number of recorded operations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Mean recorded latency (zero when empty).
    pub fn mean(&self) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.total_nanos.load(Ordering::Relaxed) / count)
    }

    /// Largest recorded latency (zero when empty).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed))
    }

    /// Smallest recorded latency (zero when empty).
    pub fn min(&self) -> Duration {
        match self.min_nanos.load(Ordering::Relaxed) {
            u64::MAX => Duration::ZERO,
            nanos => Duration::from_nanos(nanos),
        }
    }

    /// The `q`-quantile of the recorded latencies, or `None` when nothing
    /// has been recorded or `q` is NaN — the typed form of
    /// [`Self::quantile`], so callers can distinguish "no data" from "fast".
    ///
    /// Target-rank arithmetic at the edges: `q ≤ 0.0` targets rank 1 (the
    /// minimum-holding bucket), `q ≥ 1.0` targets rank `count` and reports
    /// the *exact* recorded maximum rather than a bucket bound.  Any bucket
    /// answer is additionally clamped to the exact recorded maximum, so a
    /// recording that landed in the saturation bucket (values up to
    /// `u64::MAX` ns, e.g. a clamped `Duration::MAX`) reports the true
    /// maximum instead of the bucket's saturated upper bound.
    pub fn try_quantile(&self, q: f64) -> Option<Duration> {
        let count = self.count();
        if count == 0 || q.is_nan() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q·count) is the 1-based target rank; clamp keeps q = 0.0 at
        // rank 1 and float round-off at q = 1.0 from overshooting `count`.
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        if target == count {
            // The top rank is tracked exactly — never report a bucket bound
            // (the saturation bucket's would be u64::MAX) when the true
            // maximum is known.
            return Some(self.max());
        }
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return Some(Duration::from_nanos(
                    bucket_upper_bound(i).min(self.max_nanos.load(Ordering::Relaxed)),
                ));
            }
        }
        // Unreachable when counts are consistent; weakly-consistent reads
        // under concurrent writes may briefly under-count a bucket, in which
        // case the exact maximum is the conservative answer.
        Some(self.max())
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) of the recorded latencies, as the
    /// upper bound of the bucket holding that rank (relative error at most
    /// `1/SUB_BUCKETS`), clamped to the exact recorded maximum.  Zero when
    /// empty; see [`Self::try_quantile`] for the `Option` form.
    pub fn quantile(&self, q: f64) -> Duration {
        self.try_quantile(q).unwrap_or(Duration::ZERO)
    }

    /// Number of recordings that landed in the final (saturation) bucket —
    /// durations of roughly 2<sup>63</sup> ns and above, including
    /// `Duration`s clamped to `u64::MAX` ns on the way in.  Non-zero values
    /// mean the histogram's resolution ceiling was hit and `max()` should be
    /// read as "at least".
    pub fn saturated_count(&self) -> u64 {
        self.buckets[BUCKETS - 1].load(Ordering::Relaxed)
    }

    /// Add every sample of `other` into `self` (used to aggregate per-tenant
    /// histograms into fleet-wide ones).
    pub fn merge_from(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let add = theirs.load(Ordering::Relaxed);
            if add > 0 {
                mine.fetch_add(add, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.total_nanos
            .fetch_add(other.total_nanos.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_nanos
            .fetch_max(other.max_nanos.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min_nanos
            .fetch_min(other.min_nanos.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Sum of all recorded latencies in nanoseconds (saturating on the
    /// accumulator, like every other counter here).
    pub fn total_nanos(&self) -> u64 {
        self.total_nanos.load(Ordering::Relaxed)
    }

    /// Export the histogram against an ascending ladder of upper bounds
    /// (nanoseconds) for Prometheus `_bucket`/`_sum`/`_count` rendering.
    ///
    /// The internal log-linear buckets are snapshotted **once**, so the
    /// cumulative counts and the total are mutually consistent even under
    /// concurrent recording: the implied `+Inf` bucket always equals
    /// [`HistogramExport::count`].  A log-linear bucket is attributed to a
    /// bound only when the bucket's entire range fits under it, so each
    /// cumulative count is a conservative (never over-stated) "samples ≤
    /// bound" with relative bound error at most `1/SUB_BUCKETS`.
    pub fn export(&self, bounds_nanos: &[u64]) -> HistogramExport {
        let snap: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let mut cumulative = Vec::with_capacity(bounds_nanos.len());
        let mut running = 0u64;
        let mut bucket = 0usize;
        for &bound in bounds_nanos {
            while bucket < snap.len() && bucket_upper_bound(bucket) <= bound {
                running += snap[bucket];
                bucket += 1;
            }
            cumulative.push(running);
        }
        let count = running + snap[bucket..].iter().sum::<u64>();
        HistogramExport {
            cumulative,
            count,
            sum_nanos: self.total_nanos(),
        }
    }

    /// A plain-data summary of the histogram (p50/p90/p99/p999).
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            count: self.count(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max(),
        }
    }
}

/// One consistent export of a histogram against a bucket-bound ladder;
/// see [`LatencyHistogram::export`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramExport {
    /// Cumulative sample counts, one per requested bound, non-decreasing.
    pub cumulative: Vec<u64>,
    /// Total samples (the implied `+Inf` bucket and the `_count` series).
    pub count: u64,
    /// Sum of all recorded nanoseconds (the `_sum` series).
    pub sum_nanos: u64,
}

/// Plain-data summary of a [`LatencyHistogram`] at one point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Number of recorded operations.
    pub count: u64,
    /// Mean latency.
    pub mean: Duration,
    /// Median latency.
    pub p50: Duration,
    /// 90th-percentile latency.
    pub p90: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// 99.9th-percentile latency.
    pub p999: Duration,
    /// Worst recorded latency.
    pub max: Duration,
}

impl LatencySnapshot {
    /// Operations per second over `wall` wall-clock time (0 for zero wall).
    pub fn throughput(&self, wall: Duration) -> f64 {
        if wall.is_zero() {
            0.0
        } else {
            self.count as f64 / wall.as_secs_f64()
        }
    }
}

/// Render labelled latency snapshots (e.g. one row per tenant plus a totals
/// row) as a fixed-width table.
pub fn render_latency_table(title: &str, rows: &[(String, LatencySnapshot)]) -> String {
    let mut table =
        TextTable::new(title).header(["client", "ops", "mean", "p50", "p90", "p99", "p999", "max"]);
    for (label, snap) in rows {
        table.row([
            label.clone(),
            snap.count.to_string(),
            format!("{:?}", snap.mean),
            format!("{:?}", snap.p50),
            format!("{:?}", snap.p90),
            format!("{:?}", snap.p99),
            format!("{:?}", snap.p999),
            format!("{:?}", snap.max),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_round_trip_bounds_relative_error() {
        for nanos in [0u64, 1, 15, 16, 17, 100, 1_000, 123_456, u64::MAX / 2] {
            let upper = bucket_upper_bound(bucket_index(nanos));
            assert!(upper >= nanos, "upper {upper} < {nanos}");
            // Log-linear resolution: upper bound within 1/SUB_BUCKETS.
            assert!(
                upper as f64 <= nanos as f64 * (1.0 + 1.0 / SUB_BUCKETS as f64) + 1.0,
                "upper {upper} too far above {nanos}"
            );
        }
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let h = LatencyHistogram::new();
        h.record_nanos(u64::MAX);
        h.record_nanos(u64::MAX - 1);
        h.record(Duration::MAX); // clamps to u64::MAX nanos
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(1.0), Duration::from_nanos(u64::MAX));
        assert_eq!(h.snapshot().max, Duration::from_nanos(u64::MAX));
        assert_eq!(bucket_upper_bound(bucket_index(u64::MAX)), u64::MAX);
    }

    #[test]
    fn bucket_indices_are_monotonic_and_in_range() {
        let mut last = 0usize;
        for exp in 0..64 {
            let nanos = 1u64 << exp;
            let idx = bucket_index(nanos);
            assert!(idx >= last);
            assert!(idx < BUCKETS, "index {idx} out of range for 2^{exp}");
            last = idx;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record_nanos(i * 1_000); // 1µs .. 1ms, uniform
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5).as_nanos() as f64;
        let p99 = h.quantile(0.99).as_nanos() as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.10, "p50 {p50}");
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.10, "p99 {p99}");
        assert_eq!(h.quantile(1.0), h.max());
        assert_eq!(h.max(), Duration::from_nanos(1_000_000));
        assert_eq!(h.min(), Duration::from_nanos(1_000));
        let mean = h.mean().as_nanos() as f64;
        assert!((mean - 500_500.0).abs() / 500_500.0 < 0.01, "mean {mean}");
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.min(), Duration::ZERO);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn empty_histogram_quantile_is_typed_none_not_a_bucket_value() {
        let h = LatencyHistogram::new();
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0] {
            assert_eq!(h.try_quantile(q), None, "q={q}");
        }
        assert_eq!(h.try_quantile(f64::NAN), None);
        // After one recording the same calls all have answers.
        h.record_nanos(42);
        assert!(h.try_quantile(0.5).is_some());
        assert_eq!(h.try_quantile(f64::NAN), None, "NaN stays typed-None");
    }

    #[test]
    fn single_recording_pins_rank_arithmetic_at_count_one() {
        // count = 1: every q targets rank 1 = rank count, so every quantile
        // is the one exact recording — no bucket rounding is visible.
        let h = LatencyHistogram::new();
        h.record_nanos(123_457); // deliberately not a bucket boundary
        for q in [0.0, 0.25, 0.5, 0.999, 1.0, -3.0, 7.0] {
            assert_eq!(
                h.try_quantile(q),
                Some(Duration::from_nanos(123_457)),
                "q={q}"
            );
        }
        assert_eq!(h.min(), h.max());
    }

    #[test]
    fn edge_quantiles_clamp_target_ranks() {
        let h = LatencyHistogram::new();
        for nanos in [100u64, 200, 400, 800] {
            h.record_nanos(nanos);
        }
        // q = 0.0 targets rank 1: the answer must cover the minimum without
        // jumping to a later bucket (conservative upper bound of min's own
        // bucket).
        let q0 = h.quantile(0.0).as_nanos() as u64;
        assert!((100..200).contains(&q0), "q0 = {q0}");
        // q = 1.0 targets rank `count` and is the exact maximum.
        assert_eq!(h.quantile(1.0), Duration::from_nanos(800));
        // Out-of-range q clamps instead of panicking or indexing garbage.
        assert_eq!(h.quantile(42.0), h.quantile(1.0));
        assert_eq!(h.quantile(-42.0), h.quantile(0.0));
    }

    #[test]
    fn saturation_bucket_reports_exact_max_not_a_garbage_bound() {
        let h = LatencyHistogram::new();
        // Three huge recordings near the u64 ceiling: all land in the final
        // (saturation) bucket, whose naive upper bound is u64::MAX.
        h.record_nanos(u64::MAX - 2);
        h.record_nanos(u64::MAX - 1);
        h.record_nanos(u64::MAX);
        assert_eq!(h.saturated_count(), 3);
        // Every quantile of this distribution must clamp to the *exact*
        // recorded maximum, not the bucket bound.
        assert_eq!(h.try_quantile(1.0), Some(Duration::from_nanos(u64::MAX)));
        assert_eq!(h.try_quantile(0.5), Some(Duration::from_nanos(u64::MAX)));
        // Mixed with a small value, the saturated tail still reports exactly.
        let mixed = LatencyHistogram::new();
        mixed.record_nanos(1_000);
        mixed.record_nanos(u64::MAX - 5);
        assert_eq!(mixed.saturated_count(), 1);
        assert_eq!(
            mixed.try_quantile(1.0),
            Some(Duration::from_nanos(u64::MAX - 5)),
            "exact max, not the saturated bucket bound"
        );
        assert_eq!(mixed.try_quantile(0.25), Some(Duration::from_nanos(1_023)));
        // Small values don't count as saturated.
        let small = LatencyHistogram::new();
        small.record_nanos(5);
        assert_eq!(small.saturated_count(), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(LatencyHistogram::new());
        std::thread::scope(|scope| {
            for t in 0..8 {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_nanos((t * 10_000 + i) % 1_000_000);
                    }
                });
            }
        });
        assert_eq!(h.count(), 80_000);
    }

    #[test]
    fn merge_from_aggregates() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record_nanos(100);
        b.record_nanos(1_000_000);
        b.record_nanos(500);
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Duration::from_nanos(100));
        assert_eq!(a.max(), Duration::from_nanos(1_000_000));
    }

    #[test]
    fn export_is_cumulative_and_internally_consistent() {
        let h = LatencyHistogram::new();
        h.record_nanos(500); // ≤ 1_000
        h.record_nanos(3_000); // ≤ 4_000
        h.record_nanos(3_500); // ≤ 4_000
        h.record_nanos(9_000_000_000); // beyond every bound
        let bounds = [1_000u64, 4_000, 1_000_000, 5_000_000_000];
        let export = h.export(&bounds);
        assert_eq!(export.cumulative, vec![1, 3, 3, 3]);
        assert_eq!(export.count, 4);
        assert_eq!(export.sum_nanos, 500 + 3_000 + 3_500 + 9_000_000_000);
        assert_eq!(h.total_nanos(), export.sum_nanos);
        // Monotone, and never exceeds the total.
        let mut last = 0;
        for c in &export.cumulative {
            assert!(*c >= last && *c <= export.count);
            last = *c;
        }
        // Empty ladder still exports a consistent count.
        let empty = h.export(&[]);
        assert_eq!(empty.count, 4);
        assert!(empty.cumulative.is_empty());
    }

    #[test]
    fn snapshot_and_table_render() {
        let h = LatencyHistogram::new();
        for i in 1..=100u64 {
            h.record(Duration::from_micros(i));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert!(snap.p50 <= snap.p99 && snap.p99 <= snap.p999 && snap.p999 <= snap.max);
        assert!(snap.throughput(Duration::from_secs(2)) == 50.0);
        let rendered = render_latency_table("latency", &[("tenant-0".to_string(), snap)]);
        assert!(rendered.contains("tenant-0"));
        assert!(rendered.contains("p999"));
    }
}
