//! Request-scoped tracing: span taxonomy, a lock-free ring-buffer span
//! recorder, per-request sinks, and a top-N slow-query log.
//!
//! The serving stack answers a query through many layers — HTTP parse,
//! plan compile, catalog snapshot (which may reload a spilled sketch from
//! disk or trigger a TTL refresh), merge-tree fusion, extraction, render —
//! and when a request is slow the end-to-end histogram says nothing about
//! *which* layer ate the time.  Tracing answers that: every request gets a
//! [`TraceId`] (minted at the HTTP front door or propagated in via the
//! `x-opaq-trace-id` header), each stage records a [`Span`] into a shared
//! [`SpanRecorder`], and `GET /v1/_debug/trace?id=` reads the tree back.
//!
//! The recorder is a fixed-capacity ring of seqlock slots: recording a span
//! is a handful of atomic operations with **zero allocation** — no locks,
//! no boxing, no strings — so it is safe to leave enabled at full
//! production traffic.  When the ring wraps, the oldest spans are
//! overwritten; a trace read back later may therefore be partial, which the
//! renderer tolerates (orphan spans are parented to the root).
//!
//! Write protocol per slot (`seq` even = stable, odd = write in progress):
//! the writer claims a slot by CAS-ing `seq` from even to odd (`Acquire`),
//! stores the span words `Relaxed`, then publishes with a `Release` store
//! of `seq + 2`.  The reader loads `seq` (`Acquire`), reads the words
//! `Relaxed`, issues an `Acquire` fence, and re-checks `seq`: any
//! concurrent overwrite changes `seq` and the torn read is discarded.  The
//! recipe is the classic seqlock (cf. `crossbeam`'s `SeqLock`) built purely
//! from `AtomicU64`, keeping the crate's `#![deny(unsafe_code)]`.

use std::fmt;
use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Span id of the per-request root span (`parent == 0` means "no parent").
pub const ROOT_SPAN_ID: u32 = 1;

/// A request-scoped trace identifier: 64 bits, never zero.
///
/// Rendered and parsed as 16 lower-case hex digits — the wire form of the
/// `x-opaq-trace-id` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

/// `splitmix64` — a tiny, well-mixed permutation of `u64`; zero maps away
/// from zero, so minted ids are never the reserved "no trace" value.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TraceId {
    /// Wrap a raw non-zero value; `None` when `raw == 0`.
    pub fn from_raw(raw: u64) -> Option<Self> {
        (raw != 0).then_some(Self(raw))
    }

    /// The raw 64-bit value (never zero).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Mint a fresh process-unique trace id.
    ///
    /// Seeded once per process from the wall clock and pid, then advanced
    /// through `splitmix64` — unique within a process, collision-unlikely
    /// across replicas, and never zero.
    pub fn mint() -> Self {
        static STATE: OnceLock<AtomicU64> = OnceLock::new();
        let state = STATE.get_or_init(|| {
            let clock = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x4f50_4151); // "OPAQ"
            AtomicU64::new(clock ^ (u64::from(std::process::id()) << 32))
        });
        let mut raw = 0u64;
        while raw == 0 {
            raw = splitmix64(state.fetch_add(1, Ordering::Relaxed));
        }
        Self(raw)
    }

    /// Parse the header wire form: 1–16 hex digits, non-zero.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().and_then(Self::from_raw)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The stage a span measures — the trace taxonomy of the serving stack.
///
/// Request path: `Request` is the per-request root; `Parse` covers HTTP
/// request parsing, `Compile` plan compilation, `Fetch` catalog snapshot
/// resolution (with one `Snapshot` child per `(tenant, dataset)` source,
/// tagged [`SpanTag::Hit`] / [`SpanTag::ReloadFromSpill`] /
/// [`SpanTag::RefreshTriggered`]), `Merge` the sketch merge tree, `Extract`
/// quantile/rank estimation, and `Render` response serialisation.  Ingest
/// path: `Refresh` is a refresh-pool job root with `Ingest` children (one
/// per build).  `Sync` is one replication reconciliation pass.  Ring-aware
/// serving adds `Route` (tenant-ownership resolution against the hash
/// ring, tagged [`SpanTag::Error`] when the request was misdirected) and
/// `Scatter` (cross-group partial-sketch gather for glob plans).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Per-request root span (front door to response written).
    Request,
    /// HTTP request parsing.
    Parse,
    /// Query-plan compilation.
    Compile,
    /// Catalog snapshot resolution across all plan sources.
    Fetch,
    /// One catalog snapshot (child of `Fetch`), tagged with how it was
    /// served.
    Snapshot,
    /// Merge-tree fusion of multiple sketches.
    Merge,
    /// Quantile/rank/profile extraction from the fused sketch.
    Extract,
    /// Response rendering/serialisation.
    Render,
    /// A refresh-pool job (rebuild + publish) root span.
    Refresh,
    /// One sketch ingest/build (sharded one-pass construction).
    Ingest,
    /// One replication sync pass against a peer.
    Sync,
    /// Tenant-ownership resolution against the hash ring.
    Route,
    /// Cross-group partial gather for a glob plan.
    Scatter,
}

impl Stage {
    /// Every stage, in taxonomy order.
    pub const ALL: [Stage; 13] = [
        Stage::Request,
        Stage::Parse,
        Stage::Compile,
        Stage::Fetch,
        Stage::Snapshot,
        Stage::Merge,
        Stage::Extract,
        Stage::Render,
        Stage::Refresh,
        Stage::Ingest,
        Stage::Sync,
        Stage::Route,
        Stage::Scatter,
    ];

    /// Stable lower-case wire label.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Request => "request",
            Stage::Parse => "parse",
            Stage::Compile => "compile",
            Stage::Fetch => "fetch",
            Stage::Snapshot => "snapshot",
            Stage::Merge => "merge",
            Stage::Extract => "extract",
            Stage::Render => "render",
            Stage::Refresh => "refresh",
            Stage::Ingest => "ingest",
            Stage::Sync => "sync",
            Stage::Route => "route",
            Stage::Scatter => "scatter",
        }
    }

    /// Parse the wire label back into a stage.
    pub fn from_str_label(s: &str) -> Option<Self> {
        Stage::ALL.into_iter().find(|st| st.as_str() == s)
    }

    fn code(self) -> u64 {
        match self {
            Stage::Request => 1,
            Stage::Parse => 2,
            Stage::Compile => 3,
            Stage::Fetch => 4,
            Stage::Snapshot => 5,
            Stage::Merge => 6,
            Stage::Extract => 7,
            Stage::Render => 8,
            Stage::Refresh => 9,
            Stage::Ingest => 10,
            Stage::Sync => 11,
            Stage::Route => 12,
            Stage::Scatter => 13,
        }
    }

    fn from_code(code: u64) -> Option<Self> {
        Stage::ALL.into_iter().find(|st| st.code() == code)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How the spanned work was served — the provenance bit that turns a
/// latency number into a diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SpanTag {
    /// Nothing notable.
    #[default]
    Untagged,
    /// Catalog snapshot served from the resident slot.
    Hit,
    /// Catalog snapshot reloaded from a disk spill on the query path.
    ReloadFromSpill,
    /// Snapshot was past TTL and this request triggered the refresh hook.
    RefreshTriggered,
    /// Response replayed from the last-good cache (total replica outage).
    Degraded,
    /// Request shed by the bounded accept queue (503).
    Shed,
    /// The spanned work failed.
    Error,
}

impl SpanTag {
    /// Stable lower-case wire label (empty for [`SpanTag::Untagged`]).
    pub fn as_str(self) -> &'static str {
        match self {
            SpanTag::Untagged => "",
            SpanTag::Hit => "hit",
            SpanTag::ReloadFromSpill => "reload-from-spill",
            SpanTag::RefreshTriggered => "refresh-triggered",
            SpanTag::Degraded => "degraded",
            SpanTag::Shed => "shed",
            SpanTag::Error => "error",
        }
    }

    fn code(self) -> u64 {
        match self {
            SpanTag::Untagged => 0,
            SpanTag::Hit => 1,
            SpanTag::ReloadFromSpill => 2,
            SpanTag::RefreshTriggered => 3,
            SpanTag::Degraded => 4,
            SpanTag::Shed => 5,
            SpanTag::Error => 6,
        }
    }

    fn from_code(code: u64) -> Option<Self> {
        [
            SpanTag::Untagged,
            SpanTag::Hit,
            SpanTag::ReloadFromSpill,
            SpanTag::RefreshTriggered,
            SpanTag::Degraded,
            SpanTag::Shed,
            SpanTag::Error,
        ]
        .into_iter()
        .find(|t| t.code() == code)
    }
}

/// One completed, timed unit of work inside a trace.
///
/// `start_nanos` is relative to the trace root (the sink's creation), so a
/// span tree is self-contained without wall-clock coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id within the trace (root is [`ROOT_SPAN_ID`]).
    pub span_id: u32,
    /// Parent span id; `0` for the root.
    pub parent: u32,
    /// What the span measured.
    pub stage: Stage,
    /// Provenance tag.
    pub tag: SpanTag,
    /// Offset from the trace root's start, in nanoseconds.
    pub start_nanos: u64,
    /// Duration, in nanoseconds.
    pub duration_nanos: u64,
}

/// One seqlock slot: `seq` even = stable (0 = never written), odd = write
/// in progress.  The five payload words hold one encoded [`Span`].
struct Slot {
    seq: AtomicU64,
    trace: AtomicU64,
    /// `span_id << 32 | parent`.
    ids: AtomicU64,
    /// `stage_code << 8 | tag_code`.
    meta: AtomicU64,
    start_nanos: AtomicU64,
    duration_nanos: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            ids: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            start_nanos: AtomicU64::new(0),
            duration_nanos: AtomicU64::new(0),
        }
    }
}

/// How many consecutive slots a writer probes before dropping the span
/// (only reachable when every probed slot is mid-write by another thread).
const WRITE_PROBES: usize = 4;

/// Fixed-capacity, overwrite-oldest, lock-free span ring.
///
/// [`SpanRecorder::record`] never blocks and never allocates; see the
/// module docs for the seqlock protocol.  Readers get weakly consistent
/// snapshots: spans recorded entirely before the read are visible unless
/// the ring has wrapped past them.
pub struct SpanRecorder {
    slots: Vec<Slot>,
    /// Monotone write cursor; `head % slots.len()` is the next slot.
    head: AtomicU64,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl SpanRecorder {
    /// A ring holding the most recent `capacity` spans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: (0..capacity.max(1)).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Ring capacity in spans.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans successfully written (including those since overwritten).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Spans dropped because every probed slot was mid-write.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Record one span.  Lock-free, allocation-free; overwrites the oldest
    /// slot when the ring is full.
    pub fn record(&self, span: &Span) {
        let n = self.slots.len();
        let claim = self.head.fetch_add(1, Ordering::Relaxed) as usize;
        for probe in 0..WRITE_PROBES.min(n) {
            let slot = &self.slots[(claim + probe) % n];
            let seq = slot.seq.load(Ordering::Relaxed);
            if seq & 1 == 1 {
                continue; // another writer mid-flight; probe onward
            }
            if slot
                .seq
                .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            slot.trace.store(span.trace.as_u64(), Ordering::Relaxed);
            slot.ids.store(
                (u64::from(span.span_id) << 32) | u64::from(span.parent),
                Ordering::Relaxed,
            );
            slot.meta.store(
                (span.stage.code() << 8) | span.tag.code(),
                Ordering::Relaxed,
            );
            slot.start_nanos.store(span.start_nanos, Ordering::Relaxed);
            slot.duration_nanos
                .store(span.duration_nanos, Ordering::Relaxed);
            slot.seq.store(seq + 2, Ordering::Release);
            self.recorded.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Seqlock read of one slot; `None` for never-written, mid-write, or
    /// torn (concurrently overwritten) slots.
    fn read_slot(slot: &Slot) -> Option<Span> {
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == 0 || seq & 1 == 1 {
            return None;
        }
        let trace = slot.trace.load(Ordering::Relaxed);
        let ids = slot.ids.load(Ordering::Relaxed);
        let meta = slot.meta.load(Ordering::Relaxed);
        let start_nanos = slot.start_nanos.load(Ordering::Relaxed);
        let duration_nanos = slot.duration_nanos.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        if slot.seq.load(Ordering::Relaxed) != seq {
            return None; // torn: a writer got in between
        }
        Some(Span {
            trace: TraceId::from_raw(trace)?,
            span_id: (ids >> 32) as u32,
            parent: (ids & 0xffff_ffff) as u32,
            stage: Stage::from_code(meta >> 8)?,
            tag: SpanTag::from_code(meta & 0xff)?,
            start_nanos,
            duration_nanos,
        })
    }

    /// Every currently-readable span, in unspecified order.
    pub fn spans(&self) -> Vec<Span> {
        self.slots.iter().filter_map(Self::read_slot).collect()
    }

    /// All readable spans of one trace, sorted by `(start_nanos, span_id)`.
    pub fn trace(&self, id: TraceId) -> Vec<Span> {
        let mut spans: Vec<Span> = self
            .slots
            .iter()
            .filter_map(Self::read_slot)
            .filter(|s| s.trace == id)
            .collect();
        spans.sort_by_key(|s| (s.start_nanos, s.span_id));
        spans.dedup_by_key(|s| s.span_id);
        spans
    }
}

/// Per-request span factory: owns the trace id, the time base, a span-id
/// allocator, and an optional provenance annotation for the slow log.
///
/// Usage: allocate an id when a stage starts, complete it when the stage
/// ends — children therefore finish (and are recorded) before their
/// parents, which the tree renderer handles.
#[derive(Debug)]
pub struct TraceSink {
    recorder: std::sync::Arc<SpanRecorder>,
    trace: TraceId,
    epoch: Instant,
    next: AtomicU32,
    annotation: Mutex<Option<String>>,
}

impl TraceSink {
    /// A sink for `trace`, with its time base starting now.
    pub fn new(recorder: std::sync::Arc<SpanRecorder>, trace: TraceId) -> Self {
        Self {
            recorder,
            trace,
            epoch: Instant::now(),
            next: AtomicU32::new(ROOT_SPAN_ID + 1),
            annotation: Mutex::new(None),
        }
    }

    /// The trace id this sink records under.
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// Nanoseconds since the trace root started (saturating).
    pub fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Claim the next span id (call when a stage starts).
    pub fn allocate(&self) -> u32 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Record span `span_id` under `parent` as started at `start_nanos`
    /// (from [`Self::now_nanos`]) and finished now.
    pub fn complete(
        &self,
        span_id: u32,
        parent: u32,
        stage: Stage,
        tag: SpanTag,
        start_nanos: u64,
    ) {
        self.recorder.record(&Span {
            trace: self.trace,
            span_id,
            parent,
            stage,
            tag,
            start_nanos,
            duration_nanos: self.now_nanos().saturating_sub(start_nanos),
        });
    }

    /// Record span `span_id` with an explicit duration — for work timed
    /// before the sink existed (e.g. HTTP parsing, which produces the very
    /// header the trace id comes from).
    pub fn complete_with(
        &self,
        span_id: u32,
        parent: u32,
        stage: Stage,
        tag: SpanTag,
        start_nanos: u64,
        duration_nanos: u64,
    ) {
        self.recorder.record(&Span {
            trace: self.trace,
            span_id,
            parent,
            stage,
            tag,
            start_nanos,
            duration_nanos,
        });
    }

    /// Allocate-and-complete in one call, for work that already finished:
    /// the span covers `[start_nanos, now]` under `parent`.
    pub fn child(&self, parent: u32, stage: Stage, tag: SpanTag, start_nanos: u64) -> u32 {
        let id = self.allocate();
        self.complete(id, parent, stage, tag, start_nanos);
        id
    }

    /// Record the per-request root span ([`ROOT_SPAN_ID`]) covering the
    /// sink's whole lifetime so far.
    pub fn finish_root(&self, stage: Stage, tag: SpanTag) {
        self.recorder.record(&Span {
            trace: self.trace,
            span_id: ROOT_SPAN_ID,
            parent: 0,
            stage,
            tag,
            start_nanos: 0,
            duration_nanos: self.now_nanos(),
        });
    }

    /// Attach a human-readable provenance note (e.g. the compiled plan),
    /// carried to the slow log if this request qualifies.
    pub fn annotate(&self, note: impl Into<String>) {
        *self.annotation.lock().expect("annotation lock") = Some(note.into());
    }

    /// Take the annotation, leaving `None`.
    pub fn take_annotation(&self) -> Option<String> {
        self.annotation.lock().expect("annotation lock").take()
    }
}

/// One slow-log entry: a trace id, how long the request took, and its
/// provenance note (the compiled plan / target).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEntry {
    /// The slow request's trace id (look it up in `/v1/_debug/trace`).
    pub trace: TraceId,
    /// End-to-end request duration in nanoseconds.
    pub duration_nanos: u64,
    /// Plan provenance / request target.
    pub detail: String,
}

/// Top-N slow-query log over a latency threshold.
///
/// The hot path is one relaxed atomic load when the request is below the
/// admission floor (threshold, or the current N-th slowest once full);
/// only genuinely slow requests take the mutex and render their detail
/// string.
#[derive(Debug)]
pub struct SlowLog {
    capacity: usize,
    threshold_nanos: AtomicU64,
    /// Lock-free admission floor: requests at or below this can't place.
    floor_nanos: AtomicU64,
    entries: Mutex<Vec<SlowEntry>>,
}

impl SlowLog {
    /// A log keeping the `capacity` slowest requests over `threshold`.
    pub fn new(capacity: usize, threshold: Duration) -> Self {
        let threshold_nanos = threshold.as_nanos().min(u64::MAX as u128) as u64;
        Self {
            capacity: capacity.max(1),
            threshold_nanos: AtomicU64::new(threshold_nanos),
            floor_nanos: AtomicU64::new(threshold_nanos.saturating_sub(1)),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// The current admission threshold.
    pub fn threshold(&self) -> Duration {
        Duration::from_nanos(self.threshold_nanos.load(Ordering::Relaxed))
    }

    /// Offer a finished request; `detail` is rendered only if it places.
    /// Returns whether the request entered the log.
    pub fn offer(
        &self,
        trace: TraceId,
        duration: Duration,
        detail: impl FnOnce() -> String,
    ) -> bool {
        let nanos = duration.as_nanos().min(u64::MAX as u128) as u64;
        if nanos <= self.floor_nanos.load(Ordering::Relaxed) {
            return false;
        }
        let mut entries = self.entries.lock().expect("slow log lock");
        if entries.len() >= self.capacity
            && entries
                .last()
                .is_some_and(|last| nanos <= last.duration_nanos)
        {
            // Raced past the relaxed floor; still too fast to place.
            return false;
        }
        entries.push(SlowEntry {
            trace,
            duration_nanos: nanos,
            detail: detail(),
        });
        entries.sort_by_key(|e| std::cmp::Reverse(e.duration_nanos));
        entries.truncate(self.capacity);
        if entries.len() == self.capacity {
            let floor = entries.last().map_or(0, |e| e.duration_nanos);
            self.floor_nanos.fetch_max(floor, Ordering::Relaxed);
        }
        true
    }

    /// The `n` slowest entries, slowest first.
    pub fn top(&self, n: usize) -> Vec<SlowEntry> {
        let entries = self.entries.lock().expect("slow log lock");
        entries.iter().take(n).cloned().collect()
    }

    /// The single slowest entry, if any request ever placed.
    pub fn slowest(&self) -> Option<SlowEntry> {
        self.entries.lock().expect("slow log lock").first().cloned()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("slow log lock").len()
    }

    /// Whether no request has placed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Format a nanosecond duration compactly (`873ns`, `14.2µs`, `3.1ms`,
/// `1.27s`).
pub fn format_nanos(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.1}ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Render a span tree as indented text, one span per line with start
/// offset and duration.  Orphan spans (parent overwritten by ring wrap)
/// are promoted to the top level, so partial traces still render.
pub fn render_span_tree(spans: &[Span]) -> String {
    if spans.is_empty() {
        return "  (no spans recorded for this trace)\n".to_string();
    }
    let mut ordered: Vec<&Span> = spans.iter().collect();
    ordered.sort_by_key(|s| (s.start_nanos, s.span_id));
    let known: std::collections::HashSet<u32> = ordered.iter().map(|s| s.span_id).collect();
    let mut out = String::new();
    // Roots: parent 0, or parent missing from the readable set.
    let roots: Vec<&Span> = ordered
        .iter()
        .filter(|s| s.parent == 0 || !known.contains(&s.parent))
        .copied()
        .collect();
    fn walk(out: &mut String, ordered: &[&Span], span: &Span, depth: usize) {
        let tag = if span.tag == SpanTag::Untagged {
            String::new()
        } else {
            format!(" [{}]", span.tag.as_str())
        };
        let label = format!("{:indent$}{}{}", "", span.stage, tag, indent = depth * 2);
        out.push_str(&format!(
            "  {label:<32} +{:<10} {}\n",
            format_nanos(span.start_nanos),
            format_nanos(span.duration_nanos),
        ));
        for child in ordered
            .iter()
            .filter(|c| c.parent == span.span_id && c.span_id != span.span_id)
        {
            walk(out, ordered, child, depth + 1);
        }
    }
    for root in roots {
        walk(&mut out, &ordered, root, 0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn trace_id_round_trips_through_wire_form() {
        let id = TraceId::mint();
        let wire = id.to_string();
        assert_eq!(wire.len(), 16);
        assert_eq!(TraceId::parse(&wire), Some(id));
        assert_eq!(TraceId::parse("0"), None);
        assert_eq!(TraceId::parse(""), None);
        assert_eq!(TraceId::parse("zz"), None);
        assert_eq!(TraceId::parse("deadbeef"), TraceId::from_raw(0xdead_beef));
        assert_eq!(TraceId::parse("00000000000000000"), None, "17 digits");
    }

    #[test]
    fn minted_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = TraceId::mint();
            assert_ne!(id.as_u64(), 0);
            assert!(seen.insert(id), "duplicate minted id {id}");
        }
    }

    #[test]
    fn stage_and_tag_codes_round_trip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_code(stage.code()), Some(stage));
            assert_eq!(Stage::from_str_label(stage.as_str()), Some(stage));
        }
        for code in 0..=6 {
            let tag = SpanTag::from_code(code).expect("tag code");
            assert_eq!(tag.code(), code);
        }
        assert_eq!(Stage::from_code(0), None);
        assert_eq!(SpanTag::from_code(99), None);
    }

    #[test]
    fn recorder_round_trips_spans() {
        let rec = SpanRecorder::new(16);
        let trace = TraceId::mint();
        let span = Span {
            trace,
            span_id: 2,
            parent: 1,
            stage: Stage::Fetch,
            tag: SpanTag::ReloadFromSpill,
            start_nanos: 123,
            duration_nanos: 456,
        };
        rec.record(&span);
        assert_eq!(rec.recorded(), 1);
        assert_eq!(rec.dropped(), 0);
        assert_eq!(rec.trace(trace), vec![span]);
        assert!(rec.trace(TraceId::mint()).is_empty());
    }

    #[test]
    fn ring_overwrites_oldest_but_keeps_well_formed_spans() {
        let rec = SpanRecorder::new(8);
        let trace = TraceId::mint();
        for i in 0..100u32 {
            rec.record(&Span {
                trace,
                span_id: i + 1,
                parent: 0,
                stage: Stage::Request,
                tag: SpanTag::Untagged,
                start_nanos: u64::from(i),
                duration_nanos: 1,
            });
        }
        let spans = rec.trace(trace);
        assert_eq!(spans.len(), 8, "ring holds exactly its capacity");
        for s in &spans {
            // Only the newest 8 survive the wrap.
            assert!(s.span_id > 92, "stale span {} survived", s.span_id);
        }
        assert_eq!(rec.recorded(), 100);
    }

    #[test]
    fn concurrent_writers_never_produce_torn_spans() {
        let rec = Arc::new(SpanRecorder::new(64));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let rec = Arc::clone(&rec);
                scope.spawn(move || {
                    let trace = TraceId::from_raw(t + 1).unwrap();
                    for i in 0..5_000u32 {
                        // Every field of a thread's span encodes the thread,
                        // so any cross-thread tearing is detectable.
                        rec.record(&Span {
                            trace,
                            span_id: i + 1,
                            parent: i,
                            stage: Stage::ALL[(t as usize) % Stage::ALL.len()],
                            tag: SpanTag::Untagged,
                            start_nanos: t * 1_000_000 + u64::from(i),
                            duration_nanos: t,
                        });
                    }
                });
            }
        });
        assert_eq!(rec.recorded() + rec.dropped(), 40_000);
        for span in rec.spans() {
            let t = span.duration_nanos;
            assert_eq!(span.trace, TraceId::from_raw(t + 1).unwrap(), "torn trace");
            assert_eq!(
                span.stage,
                Stage::ALL[(t as usize) % Stage::ALL.len()],
                "torn stage"
            );
            assert_eq!(
                span.start_nanos,
                t * 1_000_000 + u64::from(span.span_id - 1),
                "torn start"
            );
            assert_eq!(span.parent, span.span_id - 1, "torn ids");
        }
    }

    #[test]
    fn sink_builds_a_parented_tree() {
        let rec = Arc::new(SpanRecorder::new(32));
        let sink = TraceSink::new(Arc::clone(&rec), TraceId::mint());
        let parse_start = sink.now_nanos();
        let parse = sink.child(ROOT_SPAN_ID, Stage::Parse, SpanTag::Untagged, parse_start);
        let fetch = sink.allocate();
        let fetch_start = sink.now_nanos();
        let snap = sink.child(fetch, Stage::Snapshot, SpanTag::Hit, sink.now_nanos());
        sink.complete(
            fetch,
            ROOT_SPAN_ID,
            Stage::Fetch,
            SpanTag::Untagged,
            fetch_start,
        );
        sink.finish_root(Stage::Request, SpanTag::Untagged);
        let spans = rec.trace(sink.trace());
        assert_eq!(spans.len(), 4);
        let by_id = |id: u32| spans.iter().find(|s| s.span_id == id).copied().unwrap();
        assert_eq!(by_id(ROOT_SPAN_ID).parent, 0);
        assert_eq!(by_id(parse).parent, ROOT_SPAN_ID);
        assert_eq!(by_id(fetch).parent, ROOT_SPAN_ID);
        assert_eq!(by_id(snap).parent, fetch);
        assert_eq!(by_id(snap).tag, SpanTag::Hit);
        let root = by_id(ROOT_SPAN_ID);
        assert!(root.duration_nanos >= by_id(fetch).duration_nanos);
        let tree = render_span_tree(&spans);
        assert!(tree.contains("request"), "{tree}");
        assert!(tree.contains("snapshot [hit]"), "{tree}");
        assert!(
            tree.contains("    snapshot"),
            "snapshot nests two deep: {tree}"
        );
    }

    #[test]
    fn sink_annotation_is_take_once() {
        let sink = TraceSink::new(Arc::new(SpanRecorder::new(4)), TraceId::mint());
        assert_eq!(sink.take_annotation(), None);
        sink.annotate("plan: quantiles tenant-0/*");
        assert_eq!(
            sink.take_annotation(),
            Some("plan: quantiles tenant-0/*".to_string())
        );
        assert_eq!(sink.take_annotation(), None);
    }

    #[test]
    fn slow_log_keeps_top_n_over_threshold() {
        let log = SlowLog::new(3, Duration::from_millis(1));
        let fast = TraceId::mint();
        assert!(!log.offer(fast, Duration::from_micros(10), || unreachable!()));
        assert!(log.is_empty());
        let mut ids = Vec::new();
        for ms in [5u64, 2, 9, 3, 7] {
            let id = TraceId::mint();
            ids.push((ms, id));
            log.offer(id, Duration::from_millis(ms), || format!("req-{ms}"));
        }
        let top = log.top(10);
        assert_eq!(top.len(), 3);
        let durations: Vec<u64> = top.iter().map(|e| e.duration_nanos / 1_000_000).collect();
        assert_eq!(durations, vec![9, 7, 5]);
        assert_eq!(top[0].detail, "req-9");
        assert_eq!(log.slowest().unwrap().trace, ids[2].1);
        // Once full, entries at or below the floor are rejected lock-free.
        assert!(!log.offer(TraceId::mint(), Duration::from_millis(4), || {
            unreachable!("below floor must not render detail")
        }));
    }

    #[test]
    fn format_nanos_covers_ranges() {
        assert_eq!(format_nanos(873), "873ns");
        assert_eq!(format_nanos(14_200), "14.2µs");
        assert_eq!(format_nanos(3_100_000), "3.1ms");
        assert_eq!(format_nanos(1_270_000_000), "1.27s");
    }

    #[test]
    fn render_tolerates_orphans_and_empty() {
        assert!(render_span_tree(&[]).contains("no spans"));
        let trace = TraceId::mint();
        // A child whose parent was overwritten by ring wrap.
        let orphan = Span {
            trace,
            span_id: 7,
            parent: 3,
            stage: Stage::Merge,
            tag: SpanTag::Untagged,
            start_nanos: 10,
            duration_nanos: 20,
        };
        let tree = render_span_tree(&[orphan]);
        assert!(tree.contains("merge"), "{tree}");
    }
}
