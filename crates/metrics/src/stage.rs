//! Per-stage latency attribution for executed query plans.
//!
//! A plan in `opaq-query` runs as `fetch → [merge] → extract`.  Each stage
//! has a very different cost profile — fetch may reload a spilled sketch
//! from disk, merge is `O(total sample points)`, extract is a handful of
//! binary searches — so a single end-to-end histogram hides exactly the
//! information an operator needs when plan latency regresses.
//! [`StageLatency`] keeps one lock-free [`LatencyHistogram`] per stage;
//! recording is a few relaxed atomics, safe to share behind an `Arc`
//! across all serving threads.

use crate::latency::{LatencyHistogram, LatencySnapshot};
use std::sync::Arc;
use std::time::Duration;

/// One stage of an executed query plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStage {
    /// Snapshot resolution against the catalog (including spill reloads).
    Fetch,
    /// Cross-group partial gather for a glob plan on a partitioned fleet
    /// (only recorded when a scatter hook is installed and fires).
    Scatter,
    /// The deterministic sketch merge tree (only recorded when a plan
    /// actually merges two or more sketches).
    Merge,
    /// Quantile/rank/profile estimation on the fused sketch.
    Extract,
}

impl PlanStage {
    /// Every stage, in execution order.
    pub const ALL: [PlanStage; 4] = [
        PlanStage::Fetch,
        PlanStage::Scatter,
        PlanStage::Merge,
        PlanStage::Extract,
    ];

    /// Stable lower-case label (`fetch` / `scatter` / `merge` / `extract`),
    /// used as the `stage` label of the `/metrics` exposition.
    pub fn as_str(self) -> &'static str {
        match self {
            PlanStage::Fetch => "fetch",
            PlanStage::Scatter => "scatter",
            PlanStage::Merge => "merge",
            PlanStage::Extract => "extract",
        }
    }
}

impl std::fmt::Display for PlanStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Lock-free per-stage latency histograms for plan execution.
///
/// Histograms live behind `Arc`s so a metric registry can hold the same
/// instances and render cumulative Prometheus buckets from them without
/// copying; see [`StageLatency::shared`].
#[derive(Debug)]
pub struct StageLatency {
    fetch: Arc<LatencyHistogram>,
    scatter: Arc<LatencyHistogram>,
    merge: Arc<LatencyHistogram>,
    extract: Arc<LatencyHistogram>,
}

impl Default for StageLatency {
    fn default() -> Self {
        Self::new()
    }
}

impl StageLatency {
    /// Create empty histograms for all stages.
    pub fn new() -> Self {
        Self {
            fetch: Arc::new(LatencyHistogram::new()),
            scatter: Arc::new(LatencyHistogram::new()),
            merge: Arc::new(LatencyHistogram::new()),
            extract: Arc::new(LatencyHistogram::new()),
        }
    }

    /// Record one stage execution.
    pub fn record(&self, stage: PlanStage, elapsed: Duration) {
        self.histogram(stage).record(elapsed);
    }

    /// The histogram of one stage.
    pub fn histogram(&self, stage: PlanStage) -> &LatencyHistogram {
        match stage {
            PlanStage::Fetch => &self.fetch,
            PlanStage::Scatter => &self.scatter,
            PlanStage::Merge => &self.merge,
            PlanStage::Extract => &self.extract,
        }
    }

    /// A shared handle to one stage's histogram (for registry-backed
    /// exposition).
    pub fn shared(&self, stage: PlanStage) -> Arc<LatencyHistogram> {
        match stage {
            PlanStage::Fetch => Arc::clone(&self.fetch),
            PlanStage::Scatter => Arc::clone(&self.scatter),
            PlanStage::Merge => Arc::clone(&self.merge),
            PlanStage::Extract => Arc::clone(&self.extract),
        }
    }

    /// Snapshots of every stage in execution order (stages that never ran
    /// report `count == 0`), for deterministic metrics rendering.
    pub fn snapshot(&self) -> Vec<(PlanStage, LatencySnapshot)> {
        PlanStage::ALL
            .iter()
            .map(|&stage| (stage, self.histogram(stage).snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_wire_forms() {
        assert_eq!(PlanStage::Fetch.as_str(), "fetch");
        assert_eq!(PlanStage::Scatter.as_str(), "scatter");
        assert_eq!(PlanStage::Merge.as_str(), "merge");
        assert_eq!(PlanStage::Extract.as_str(), "extract");
        assert_eq!(format!("{}", PlanStage::Merge), "merge");
    }

    #[test]
    fn stages_record_independently() {
        let stages = StageLatency::new();
        stages.record(PlanStage::Fetch, Duration::from_micros(10));
        stages.record(PlanStage::Fetch, Duration::from_micros(20));
        stages.record(PlanStage::Extract, Duration::from_micros(5));
        assert_eq!(stages.histogram(PlanStage::Fetch).count(), 2);
        assert_eq!(stages.histogram(PlanStage::Merge).count(), 0);
        assert_eq!(stages.histogram(PlanStage::Extract).count(), 1);
    }

    #[test]
    fn snapshot_covers_all_stages_in_order() {
        let stages = StageLatency::new();
        stages.record(PlanStage::Merge, Duration::from_micros(3));
        let snap = stages.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[0].0, PlanStage::Fetch);
        assert_eq!(snap[1].0, PlanStage::Scatter);
        assert_eq!(snap[2].0, PlanStage::Merge);
        assert_eq!(snap[3].0, PlanStage::Extract);
        assert_eq!(snap[0].1.count, 0);
        assert_eq!(snap[2].1.count, 1);
    }

    #[test]
    fn recording_is_thread_safe() {
        let stages = std::sync::Arc::new(StageLatency::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let stages = std::sync::Arc::clone(&stages);
                scope.spawn(move || {
                    for i in 0..1_000u64 {
                        let stage = PlanStage::ALL[(i as usize) % PlanStage::ALL.len()];
                        stages.record(stage, Duration::from_nanos(i));
                    }
                });
            }
        });
        let total: u64 = PlanStage::ALL
            .iter()
            .map(|&s| stages.histogram(s).count())
            .sum();
        assert_eq!(total, 4_000);
    }
}
