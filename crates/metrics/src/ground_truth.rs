//! Exact order statistics used as ground truth by every experiment.

/// Exact quantile information for a dataset, computed from a sorted copy.
///
/// The φ-quantile of an ordered sequence is defined by the paper as "the
/// element with rank ⌈φ·n⌉"; [`GroundTruth::quantile_value`] follows that
/// definition (1-based rank, clamped to `[1, n]`).
#[derive(Debug, Clone)]
pub struct GroundTruth {
    sorted: Vec<u64>,
}

impl GroundTruth {
    /// Build ground truth by sorting a copy of `data`.
    ///
    /// # Panics
    /// Panics if `data` is empty.
    pub fn new(data: &[u64]) -> Self {
        assert!(
            !data.is_empty(),
            "ground truth requires a non-empty dataset"
        );
        let mut sorted = data.to_vec();
        sorted.sort_unstable();
        Self { sorted }
    }

    /// Build from data that is already sorted (asserted in debug builds).
    pub fn from_sorted(sorted: Vec<u64>) -> Self {
        assert!(
            !sorted.is_empty(),
            "ground truth requires a non-empty dataset"
        );
        debug_assert!(
            sorted.windows(2).all(|w| w[0] <= w[1]),
            "input must be sorted"
        );
        Self { sorted }
    }

    /// Number of elements.
    pub fn n(&self) -> u64 {
        self.sorted.len() as u64
    }

    /// The sorted data (borrow).
    pub fn sorted(&self) -> &[u64] {
        &self.sorted
    }

    /// The 1-based rank `⌈φ·n⌉` of the φ-quantile, clamped to `[1, n]`.
    pub fn quantile_rank(&self, phi: f64) -> u64 {
        assert!((0.0..=1.0).contains(&phi), "phi must be in [0, 1]");
        let n = self.n();
        let rank = (phi * n as f64).ceil() as u64;
        rank.clamp(1, n)
    }

    /// The exact φ-quantile value.
    pub fn quantile_value(&self, phi: f64) -> u64 {
        let rank = self.quantile_rank(phi);
        self.sorted[(rank - 1) as usize]
    }

    /// The exact values of the `q`-quantiles `φ = 1/q, …, (q−1)/q`
    /// (e.g. `q = 10` gives the nine dectiles).
    pub fn quantiles(&self, q: u64) -> Vec<u64> {
        assert!(q >= 2, "q must be at least 2");
        (1..q)
            .map(|i| self.quantile_value(i as f64 / q as f64))
            .collect()
    }

    /// Number of elements strictly less than `value`.
    pub fn rank_lt(&self, value: u64) -> u64 {
        self.sorted.partition_point(|&x| x < value) as u64
    }

    /// Number of elements less than or equal to `value`.
    pub fn rank_le(&self, value: u64) -> u64 {
        self.sorted.partition_point(|&x| x <= value) as u64
    }

    /// Number of elements equal to `value`.
    pub fn count_eq(&self, value: u64) -> u64 {
        self.rank_le(value) - self.rank_lt(value)
    }

    /// Number of elements in the closed interval `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn count_in_closed_range(&self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range [{lo}, {hi}]");
        self.rank_le(hi) - self.rank_lt(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_sequence() {
        let gt = GroundTruth::new(&[5, 1, 3, 2, 4]);
        // rank ceil(0.5*5)=3 -> value 3
        assert_eq!(gt.quantile_value(0.5), 3);
    }

    #[test]
    fn dectiles_of_1_to_100() {
        let data: Vec<u64> = (1..=100).collect();
        let gt = GroundTruth::new(&data);
        let dectiles = gt.quantiles(10);
        assert_eq!(dectiles, vec![10, 20, 30, 40, 50, 60, 70, 80, 90]);
    }

    #[test]
    fn extreme_phis_clamp() {
        let gt = GroundTruth::new(&[10, 20, 30]);
        assert_eq!(gt.quantile_value(0.0), 10, "phi=0 clamps to rank 1");
        assert_eq!(gt.quantile_value(1.0), 30);
    }

    #[test]
    fn ranks_and_counts_with_duplicates() {
        let gt = GroundTruth::new(&[1, 2, 2, 2, 3, 5]);
        assert_eq!(gt.rank_lt(2), 1);
        assert_eq!(gt.rank_le(2), 4);
        assert_eq!(gt.count_eq(2), 3);
        assert_eq!(gt.count_eq(4), 0);
        assert_eq!(gt.count_in_closed_range(2, 3), 4);
        assert_eq!(gt.count_in_closed_range(0, 100), 6);
    }

    #[test]
    fn from_sorted_matches_new() {
        let data: Vec<u64> = vec![9, 4, 6, 1];
        let a = GroundTruth::new(&data);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let b = GroundTruth::from_sorted(sorted);
        assert_eq!(a.quantiles(4), b.quantiles(4));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_data_panics() {
        GroundTruth::new(&[]);
    }

    #[test]
    #[should_panic(expected = "phi must be in [0, 1]")]
    fn bad_phi_panics() {
        GroundTruth::new(&[1]).quantile_rank(1.5);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn inverted_range_panics() {
        GroundTruth::new(&[1, 2]).count_in_closed_range(3, 2);
    }
}
