//! Phase timing for the Table 11 / Table 12 breakdowns.
//!
//! The paper reports the fraction of total execution time spent in I/O,
//! sampling, local merging and global merging.  [`PhaseTimer`] accumulates
//! named durations (measured or modelled) and [`PhaseBreakdown`] turns them
//! into fractions of the total.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Accumulates named phase durations.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimer {
    phases: Vec<(String, Duration)>,
}

impl PhaseTimer {
    /// Create an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `duration` to the named phase (creating it if needed).
    pub fn add(&mut self, phase: &str, duration: Duration) {
        if let Some(entry) = self.phases.iter_mut().find(|(name, _)| name == phase) {
            entry.1 += duration;
        } else {
            self.phases.push((phase.to_string(), duration));
        }
    }

    /// Time the closure and charge its wall-clock duration to `phase`,
    /// returning the closure's result.
    pub fn time<T>(&mut self, phase: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed());
        out
    }

    /// Total accumulated time across all phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// The accumulated time of one phase (zero if the phase never ran).
    pub fn get(&self, phase: &str) -> Duration {
        self.phases
            .iter()
            .find(|(name, _)| name == phase)
            .map(|(_, d)| *d)
            .unwrap_or(Duration::ZERO)
    }

    /// Produce the fraction-of-total breakdown.
    pub fn breakdown(&self) -> PhaseBreakdown {
        let total = self.total();
        let total_secs = total.as_secs_f64();
        let phases = self
            .phases
            .iter()
            .map(|(name, d)| {
                let fraction = if total_secs > 0.0 {
                    d.as_secs_f64() / total_secs
                } else {
                    0.0
                };
                (name.clone(), d.as_secs_f64(), fraction)
            })
            .collect();
        PhaseBreakdown {
            total_seconds: total_secs,
            phases,
        }
    }

    /// Merge another timer's phases into this one (used to combine
    /// per-processor timers into a machine-wide maximum is *not* what this
    /// does — it sums; see `PhaseBreakdown` consumers for per-processor
    /// handling).
    pub fn merge(&mut self, other: &PhaseTimer) {
        for (name, d) in &other.phases {
            self.add(name, *d);
        }
    }
}

/// Phase durations expressed as seconds and fractions of the total.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Total seconds across all phases.
    pub total_seconds: f64,
    /// `(phase name, seconds, fraction of total)` in insertion order.
    pub phases: Vec<(String, f64, f64)>,
}

impl PhaseBreakdown {
    /// Fraction of the total attributed to `phase` (zero if absent).
    pub fn fraction(&self, phase: &str) -> f64 {
        self.phases
            .iter()
            .find(|(name, _, _)| name == phase)
            .map(|(_, _, f)| *f)
            .unwrap_or(0.0)
    }

    /// Seconds attributed to `phase` (zero if absent).
    pub fn seconds(&self, phase: &str) -> f64 {
        self.phases
            .iter()
            .find(|(name, _, _)| name == phase)
            .map(|(_, s, _)| *s)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_total() {
        let mut t = PhaseTimer::new();
        t.add("io", Duration::from_millis(300));
        t.add("sampling", Duration::from_millis(500));
        t.add("io", Duration::from_millis(200));
        assert_eq!(t.total(), Duration::from_millis(1000));
        assert_eq!(t.get("io"), Duration::from_millis(500));
        assert_eq!(t.get("missing"), Duration::ZERO);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let mut t = PhaseTimer::new();
        t.add("a", Duration::from_millis(250));
        t.add("b", Duration::from_millis(750));
        let b = t.breakdown();
        assert!((b.fraction("a") - 0.25).abs() < 1e-9);
        assert!((b.fraction("b") - 0.75).abs() < 1e-9);
        let sum: f64 = b.phases.iter().map(|(_, _, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_timer_breakdown_is_zero() {
        let b = PhaseTimer::new().breakdown();
        assert_eq!(b.total_seconds, 0.0);
        assert_eq!(b.fraction("anything"), 0.0);
    }

    #[test]
    fn time_closure_records_and_returns() {
        let mut t = PhaseTimer::new();
        let v = t.time("compute", || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(t.get("compute") >= Duration::from_millis(4));
    }

    #[test]
    fn merge_sums_phases() {
        let mut a = PhaseTimer::new();
        a.add("io", Duration::from_secs(1));
        let mut b = PhaseTimer::new();
        b.add("io", Duration::from_secs(2));
        b.add("merge", Duration::from_secs(1));
        a.merge(&b);
        assert_eq!(a.get("io"), Duration::from_secs(3));
        assert_eq!(a.get("merge"), Duration::from_secs(1));
    }

    #[test]
    fn breakdown_seconds_lookup() {
        let mut t = PhaseTimer::new();
        t.add("x", Duration::from_millis(1500));
        let b = t.breakdown();
        assert!((b.seconds("x") - 1.5).abs() < 1e-9);
        assert_eq!(b.seconds("y"), 0.0);
    }
}
