//! Fixed-width text tables for the experiment binaries.
//!
//! Every table/figure binary in `opaq-bench` prints its results in the same
//! layout as the paper's tables so EXPERIMENTS.md can juxtapose them
//! directly.  This tiny builder keeps the formatting in one place.

use std::fmt::Write as _;

/// A simple left-padded text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            header: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Set the column headers.
    pub fn header<S: Into<String>>(mut self, cols: impl IntoIterator<Item = S>) -> Self {
        self.header = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Append one row of cells.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table to a string.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(display_width(h));
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(display_width(cell));
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        if !self.header.is_empty() {
            let _ = writeln!(out, "{}", format_row(&self.header, &widths));
            let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
            let _ = writeln!(out, "{}", format_row(&rule, &widths));
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", format_row(row, &widths));
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Printable width of a cell in characters.  `str::len` counts *bytes*, so
/// measuring with it misaligns every column that contains a multi-byte
/// character — most visibly the `µ` in `Duration`'s `123.4µs` debug output,
/// which appears in the busy/starved columns of multi-shard ingest tables.
fn display_width(s: &str) -> usize {
    s.chars().count()
}

fn format_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .enumerate()
        .map(|(i, c)| {
            format!(
                "{:>width$}",
                c,
                width = widths.get(i).copied().unwrap_or_else(|| display_width(c))
            )
        })
        .collect::<Vec<_>>()
        .join("  ")
}

/// Format a float with the two-decimal precision the paper's tables use.
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows_aligned() {
        let mut t = TextTable::new("demo").header(["dectile", "uniform", "zipf"]);
        t.row(["10%", "0.08", "0.09"]);
        t.row(["20%", "0.10", "0.07"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("dectile"));
        let lines: Vec<&str> = s.lines().collect();
        // title + header + rule + 2 rows
        assert_eq!(lines.len(), 5);
        // all data lines have equal length (alignment)
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn empty_table_renders_title_only() {
        let t = TextTable::new("empty");
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 1);
    }

    #[test]
    fn len_counts_rows() {
        let mut t = TextTable::new("x");
        assert_eq!(t.len(), 0);
        t.row(["a"]);
        t.row(["b"]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fmt2_two_decimals() {
        assert_eq!(fmt2(0.08443), "0.08");
        assert_eq!(fmt2(12.0), "12.00");
    }

    #[test]
    fn multibyte_cells_align_by_chars_not_bytes() {
        // `Duration`'s debug output mixes `ms` and `µs` cells; `µ` is two
        // bytes but one column, so alignment must count chars.
        let mut t = TextTable::new("durations").header(["shard", "busy"]);
        t.row(["9", "1.5ms"]);
        t.row(["10", "998.7µs"]);
        t.row(["11", "12.25ms"]);
        let s = t.render();
        let widths: Vec<usize> = s.lines().skip(1).map(|l| l.chars().count()).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "all lines must have the same char width: {widths:?}\n{s}"
        );
    }

    #[test]
    fn display_matches_render() {
        let mut t = TextTable::new("display").header(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_string(), t.render());
        assert!(format!("{t}").contains("== display =="));
    }

    #[test]
    fn ragged_rows_do_not_panic() {
        let mut t = TextTable::new("ragged").header(["a", "b"]);
        t.row(["1"]);
        t.row(["1", "2"]);
        let s = t.render();
        assert!(s.contains('1'));
    }
}
