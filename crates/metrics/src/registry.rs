//! A typed metric registry rendering valid Prometheus text exposition.
//!
//! One [`MetricRegistry`] is the single source of truth for every metric
//! name the serving stack exports: each family is registered exactly once
//! with its `# HELP` string and type, series are identified by their label
//! pairs, and [`MetricRegistry::render`] produces the `/metrics` body —
//! `# HELP`/`# TYPE` lines on every family, escaped label values, a
//! guaranteed trailing newline, and cumulative `_bucket`/`_sum`/`_count`
//! series for histogram families backed by the crate's log-linear
//! [`LatencyHistogram`]s.
//!
//! Registration order is render order, so scrapes are deterministic; and
//! because callers register families at startup (not lazily on first use),
//! the exposition schema is stable from the very first scrape — a gauge
//! that has never moved renders as `0`, not as absent.
//!
//! Handles ([`Counter`], [`Gauge`]) are cheap `Arc<AtomicU64>` wrappers:
//! clone them out of the registry once and update them lock-free on the
//! hot path, or mirror an external atomic into them at scrape time.

use crate::latency::LatencyHistogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default histogram bucket ladder in nanoseconds: 1µs → 5s, roughly
/// geometric, dense around the 1–100 ms serving SLO band.
pub const DEFAULT_BOUNDS_NANOS: [u64; 14] = [
    1_000,
    4_000,
    16_000,
    64_000,
    250_000,
    1_000_000,
    4_000_000,
    16_000_000,
    50_000_000,
    100_000_000,
    250_000_000,
    1_000_000_000,
    2_500_000_000,
    5_000_000_000,
];

/// A monotonically-increasing counter handle.
///
/// `set` exists for scrape-time mirroring of counters whose source of
/// truth is an existing atomic elsewhere in the stack; mirrored values
/// must themselves be monotone.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite with `v` (scrape-time mirror of an external counter).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle (a value that can go up and down).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite with `v`.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum SeriesValue {
    Scalar(Arc<AtomicU64>),
    Histogram(Arc<LatencyHistogram>),
}

struct Series {
    labels: Vec<(String, String)>,
    value: SeriesValue,
}

struct Family {
    name: String,
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

/// Typed registry of metric families; see the module docs.
pub struct MetricRegistry {
    families: Mutex<Vec<Family>>,
    /// Bucket ladder used for every histogram family, sorted ascending.
    bounds_nanos: Vec<u64>,
}

impl Default for MetricRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for MetricRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.lock().expect("registry lock");
        f.debug_struct("MetricRegistry")
            .field("families", &families.len())
            .finish()
    }
}

/// `[a-zA-Z_:][a-zA-Z0-9_:]*` — the Prometheus metric-name charset.
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `[a-zA-Z_][a-zA-Z0-9_]*` — the Prometheus label-name charset.
fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escape a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a HELP string: `\` → `\\`, newline → `\n`.
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render `{k="v",...}` (empty string for an unlabeled series).
fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    format!("{{{}}}", parts.join(","))
}

impl MetricRegistry {
    /// An empty registry with the [`DEFAULT_BOUNDS_NANOS`] histogram
    /// ladder.
    pub fn new() -> Self {
        Self {
            families: Mutex::new(Vec::new()),
            bounds_nanos: DEFAULT_BOUNDS_NANOS.to_vec(),
        }
    }

    /// The histogram bucket ladder (ascending, `+Inf` implied).
    pub fn bounds_nanos(&self) -> &[u64] {
        &self.bounds_nanos
    }

    fn upsert(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> SeriesValue,
    ) -> Option<Arc<AtomicU64>> {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name {k:?} on {name}");
            assert!(*k != "le", "label name `le` is reserved on {name}");
        }
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        let mut families = self.families.lock().expect("registry lock");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric {name} registered twice with different types ({} vs {})",
                    f.kind.as_str(),
                    kind.as_str()
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(existing) = family.series.iter().find(|s| s.labels == labels) {
            return match &existing.value {
                SeriesValue::Scalar(v) => Some(Arc::clone(v)),
                SeriesValue::Histogram(_) => None,
            };
        }
        let value = make();
        let handle = match &value {
            SeriesValue::Scalar(v) => Some(Arc::clone(v)),
            SeriesValue::Histogram(_) => None,
        };
        family.series.push(Series { labels, value });
        handle
    }

    /// Register (or fetch) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or fetch) a counter series with the given label pairs.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        Counter(
            self.upsert(name, help, Kind::Counter, labels, || {
                SeriesValue::Scalar(Arc::new(AtomicU64::new(0)))
            })
            .expect("counter series holds a scalar"),
        )
    }

    /// Register (or fetch) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or fetch) a gauge series with the given label pairs.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        Gauge(
            self.upsert(name, help, Kind::Gauge, labels, || {
                SeriesValue::Scalar(Arc::new(AtomicU64::new(0)))
            })
            .expect("gauge series holds a scalar"),
        )
    }

    /// Register an unlabeled histogram family backed by `hist`.
    pub fn histogram(&self, name: &str, help: &str, hist: Arc<LatencyHistogram>) {
        self.histogram_with(name, help, &[], hist);
    }

    /// Register a histogram series with the given label pairs, backed by
    /// `hist`.  The `le` label is reserved for the renderer.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: Arc<LatencyHistogram>,
    ) {
        self.upsert(name, help, Kind::Histogram, labels, || {
            SeriesValue::Histogram(hist)
        });
    }

    /// Render the full Prometheus text exposition: every registered family
    /// with `# HELP`/`# TYPE`, in registration order, trailing newline
    /// guaranteed.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("registry lock");
        let mut out = String::new();
        for family in families.iter() {
            out.push_str(&format!(
                "# HELP {} {}\n",
                family.name,
                escape_help(&family.help)
            ));
            out.push_str(&format!(
                "# TYPE {} {}\n",
                family.name,
                family.kind.as_str()
            ));
            for series in &family.series {
                match &series.value {
                    SeriesValue::Scalar(v) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            render_labels(&series.labels, None),
                            v.load(Ordering::Relaxed)
                        ));
                    }
                    SeriesValue::Histogram(hist) => {
                        let export = hist.export(&self.bounds_nanos);
                        for (bound, cumulative) in self.bounds_nanos.iter().zip(&export.cumulative)
                        {
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                family.name,
                                render_labels(&series.labels, Some(("le", &bound.to_string()))),
                                cumulative
                            ));
                        }
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            family.name,
                            render_labels(&series.labels, Some(("le", "+Inf"))),
                            export.count
                        ));
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            family.name,
                            render_labels(&series.labels, None),
                            export.sum_nanos
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            family.name,
                            render_labels(&series.labels, None),
                            export.count
                        ));
                    }
                }
            }
        }
        if !out.ends_with('\n') {
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counters_and_gauges_render_with_help_and_type() {
        let reg = MetricRegistry::new();
        let c = reg.counter("opaq_requests", "Total requests.");
        let g = reg.gauge("opaq_entries", "Catalog entries.");
        c.add(3);
        c.inc();
        g.set(7);
        let text = reg.render();
        assert!(text.contains("# HELP opaq_requests Total requests.\n"));
        assert!(text.contains("# TYPE opaq_requests counter\n"));
        assert!(text.contains("\nopaq_requests 4\n"));
        assert!(text.contains("# TYPE opaq_entries gauge\n"));
        assert!(text.contains("\nopaq_entries 7\n"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn preregistered_series_render_zero_before_first_use() {
        let reg = MetricRegistry::new();
        reg.counter("opaq_failovers", "Failovers.");
        assert!(reg.render().contains("opaq_failovers 0\n"), "schema-stable");
    }

    #[test]
    fn labeled_series_share_a_family_and_escape_values() {
        let reg = MetricRegistry::new();
        let a = reg.gauge_with(
            "opaq_replica_breaker_state",
            "Breaker state per replica.",
            &[("peer", "127.0.0.1:7001")],
        );
        let sum = reg.gauge("opaq_replica_breaker_state", "Breaker state per replica.");
        let weird = reg.gauge_with(
            "opaq_replica_breaker_state",
            "Breaker state per replica.",
            &[("peer", "a\"b\\c\nd")],
        );
        a.set(1);
        sum.set(1);
        weird.set(2);
        let text = reg.render();
        assert_eq!(
            text.matches("# TYPE opaq_replica_breaker_state gauge")
                .count(),
            1,
            "one family, one TYPE line: {text}"
        );
        assert!(text.contains("opaq_replica_breaker_state{peer=\"127.0.0.1:7001\"} 1\n"));
        assert!(text.contains("\nopaq_replica_breaker_state 1\n"));
        assert!(
            text.contains("opaq_replica_breaker_state{peer=\"a\\\"b\\\\c\\nd\"} 2\n"),
            "escaped: {text}"
        );
    }

    #[test]
    fn same_name_and_labels_returns_the_same_handle() {
        let reg = MetricRegistry::new();
        let a = reg.counter("opaq_x", "X.");
        let b = reg.counter("opaq_x", "X.");
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(
            reg.render()
                .lines()
                .filter(|l| l.starts_with("opaq_x "))
                .count(),
            1
        );
    }

    #[test]
    #[should_panic(expected = "different types")]
    fn kind_conflict_panics() {
        let reg = MetricRegistry::new();
        reg.counter("opaq_x", "X.");
        reg.gauge("opaq_x", "X.");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        MetricRegistry::new().counter("0bad-name", "Bad.");
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn le_label_is_reserved() {
        MetricRegistry::new().gauge_with("opaq_x", "X.", &[("le", "1")]);
    }

    #[test]
    fn histogram_renders_cumulative_buckets_sum_count() {
        let reg = MetricRegistry::new();
        let hist = Arc::new(LatencyHistogram::new());
        reg.histogram(
            "opaq_request_duration_nanos",
            "Request duration.",
            Arc::clone(&hist),
        );
        hist.record(Duration::from_micros(2)); // 2_000 ns
        hist.record(Duration::from_millis(2)); // 2_000_000 ns
        hist.record(Duration::from_secs(10)); // beyond the ladder: +Inf only
        let text = reg.render();
        assert!(text.contains("# TYPE opaq_request_duration_nanos histogram\n"));
        assert!(text.contains("opaq_request_duration_nanos_bucket{le=\"1000\"} 0\n"));
        assert!(text.contains("opaq_request_duration_nanos_bucket{le=\"4000\"} 1\n"));
        assert!(text.contains("opaq_request_duration_nanos_bucket{le=\"4000000\"} 2\n"));
        assert!(text.contains("opaq_request_duration_nanos_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("opaq_request_duration_nanos_count 3\n"));
        // Sum is exact: 2µs + 2ms + 10s.
        assert!(
            text.contains("opaq_request_duration_nanos_sum 10002002000\n"),
            "{text}"
        );
        // Buckets are monotone non-decreasing.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be cumulative: {line}");
            last = v;
        }
    }

    #[test]
    fn labeled_histograms_put_le_last() {
        let reg = MetricRegistry::new();
        let hist = Arc::new(LatencyHistogram::new());
        reg.histogram_with(
            "opaq_plan_stage_duration_nanos",
            "Stage duration.",
            &[("stage", "fetch")],
            hist,
        );
        let text = reg.render();
        assert!(
            text.contains("opaq_plan_stage_duration_nanos_bucket{stage=\"fetch\",le=\"+Inf\"} 0\n"),
            "{text}"
        );
        assert!(text.contains("opaq_plan_stage_duration_nanos_sum{stage=\"fetch\"} 0\n"));
    }

    #[test]
    fn registration_order_is_render_order() {
        let reg = MetricRegistry::new();
        reg.counter("opaq_b", "B.");
        reg.counter("opaq_a", "A.");
        let text = reg.render();
        let b = text.find("# HELP opaq_b").unwrap();
        let a = text.find("# HELP opaq_a").unwrap();
        assert!(b < a, "registration order preserved");
    }
}
