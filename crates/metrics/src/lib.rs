//! Error metrics, ground truth and timing instrumentation for the OPAQ
//! reproduction.
//!
//! Section 2.4 of the paper quantifies estimation error with three measures
//! (Figure 2 defines the terms):
//!
//! * **RER_A** — `(Ne − Nt)/n · 100`, where `Ne` is the number of elements
//!   between the estimated lower and upper bounds and `Nt` the number of
//!   duplicates of the exact quantile value between those bounds.  Reported
//!   per dectile ("A for Almaden": the measure used by `[AS95]`).
//! * **RER_L** — the maximum over quantiles of the relative difference
//!   between the number of elements separating successive *true* quantiles
//!   and the number separating successive *estimated* bounds ("L for Load
//!   balancing").
//! * **RER_N** — the maximum over quantiles of the number of elements between
//!   a true quantile and its estimated bound, normalised by `n/q`
//!   ("N for Normalised").
//!
//! This crate computes all three from a sorted copy of the data plus the
//! estimated bounds, provides exact ground-truth quantiles, a phase timer
//! for the Table 11/12 breakdowns, a fixed-width text-table builder used
//! by every experiment binary, lock-free [`latency`] histograms
//! (p50/p99/p999) for the multi-tenant serving layer in `opaq-serve`, and
//! [`slo`] threshold verdicts for the open-loop serving benchmarks.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod error_rates;
pub mod ground_truth;
pub mod latency;
pub mod shard;
pub mod slo;
pub mod stage;
pub mod table;
pub mod timing;

pub use error_rates::{compute_error_rates, ErrorReport, QuantileBoundsView, RelativeErrorRates};
pub use ground_truth::GroundTruth;
pub use latency::{render_latency_table, LatencyHistogram, LatencySnapshot};
pub use shard::{render_shard_table, ShardStats};
pub use slo::{SloCheck, SloOutcome, SloThresholds};
pub use stage::{PlanStage, StageLatency};
pub use table::{fmt2, TextTable};
pub use timing::{PhaseBreakdown, PhaseTimer};
