//! Error metrics, ground truth and timing instrumentation for the OPAQ
//! reproduction.
//!
//! Section 2.4 of the paper quantifies estimation error with three measures
//! (Figure 2 defines the terms):
//!
//! * **RER_A** — `(Ne − Nt)/n · 100`, where `Ne` is the number of elements
//!   between the estimated lower and upper bounds and `Nt` the number of
//!   duplicates of the exact quantile value between those bounds.  Reported
//!   per dectile ("A for Almaden": the measure used by `[AS95]`).
//! * **RER_L** — the maximum over quantiles of the relative difference
//!   between the number of elements separating successive *true* quantiles
//!   and the number separating successive *estimated* bounds ("L for Load
//!   balancing").
//! * **RER_N** — the maximum over quantiles of the number of elements between
//!   a true quantile and its estimated bound, normalised by `n/q`
//!   ("N for Normalised").
//!
//! This crate computes all three from a sorted copy of the data plus the
//! estimated bounds, provides exact ground-truth quantiles, a phase timer
//! for the Table 11/12 breakdowns, a fixed-width text-table builder used
//! by every experiment binary, lock-free [`latency`] histograms
//! (p50/p99/p999) for the multi-tenant serving layer in `opaq-serve`,
//! [`slo`] threshold verdicts for the open-loop serving benchmarks, and
//! the serving stack's observability layer: request [`trace`]s and the
//! Prometheus metric [`registry`].
//!
//! # Observability guide
//!
//! ## Tracing
//!
//! Every HTTP request is assigned a [`trace::TraceId`] at the front door
//! (or adopts one arriving in the `x-opaq-trace-id` header, so traces
//! follow a request across replica failover hops and `/v1/_sync/*`
//! replication pulls), and every response carries the id back in the same
//! header.  Stages record [`trace::Span`]s into a fixed-capacity
//! lock-free ring ([`trace::SpanRecorder`]) — recording is allocation-free
//! and never blocks, so tracing stays on at full production traffic.
//!
//! Span taxonomy ([`trace::Stage`]): `request` (root) → `parse` →
//! `compile` → `fetch` (with one `snapshot` child per source, tagged
//! `hit` / `reload-from-spill` / `refresh-triggered`) → `merge` →
//! `extract` → `render`; ingest-side jobs record `refresh` roots with
//! `ingest` children, and each replication pass records a `sync` root.
//! Tags ([`trace::SpanTag`]) carry provenance: `degraded` marks last-good
//! replays, `shed` marks accept-queue 503s, `error` marks failures.
//!
//! Read traces back with `GET /v1/_debug/trace?id=<hex>` or render them
//! with `opaq trace --addr HOST:PORT --id <hex>`.  The slow-query log
//! ([`trace::SlowLog`]) keeps the top-N requests over a threshold with
//! full plan provenance: `GET /v1/_debug/slow?n=` or
//! `opaq trace --addr HOST:PORT --slow N`.
//!
//! ## Metric registry
//!
//! One [`registry::MetricRegistry`] is the single source of truth for
//! every exported metric name and its `# HELP` string; `/metrics` renders
//! from it in strict Prometheus text format (HELP/TYPE on every family,
//! escaped labels, trailing newline, schema-stable from the first
//! scrape).  Metric catalog:
//!
//! | metric | type | meaning |
//! |---|---|---|
//! | `opaq_http_requests` | counter | HTTP requests handled |
//! | `opaq_http_parse_errors` | counter | malformed requests rejected |
//! | `opaq_http_sheds` | counter | requests shed by the accept queue |
//! | `opaq_trace_spans_recorded` | counter | spans written to the ring |
//! | `opaq_trace_spans_dropped` | counter | spans lost to write contention |
//! | `opaq_slow_log_entries` | gauge | slow-log occupancy |
//! | `opaq_request_duration_nanos` | histogram | end-to-end request latency |
//! | `opaq_plan_stage_duration_nanos{stage=}` | histogram | per-stage plan latency |
//! | `opaq_request_latency_nanos{tenant=,quantile=}` | gauge | per-tenant latency quantiles |
//! | `opaq_plan_stage_latency_nanos{stage=,quantile=}` | gauge | per-stage latency quantiles |
//! | `opaq_plan_stage_executions{stage=}` | gauge | per-stage execution counts |
//! | `opaq_catalog_*` | counter/gauge | catalog activity (publishes, snapshots, reloads, …) |
//! | `opaq_slo_breaches` | counter | requests over the configured SLO |
//! | `opaq_failovers`, `opaq_breaker_opens`, `opaq_sync_deltas_applied`, `opaq_chaos_faults_injected` | counter | replication/failover activity |
//! | `opaq_replica_breaker_state{peer=}` | gauge | 0 closed / 1 open / 2 half-open |

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod error_rates;
pub mod ground_truth;
pub mod latency;
pub mod registry;
pub mod shard;
pub mod slo;
pub mod stage;
pub mod table;
pub mod timing;
pub mod trace;

pub use error_rates::{compute_error_rates, ErrorReport, QuantileBoundsView, RelativeErrorRates};
pub use ground_truth::GroundTruth;
pub use latency::{render_latency_table, HistogramExport, LatencyHistogram, LatencySnapshot};
pub use registry::{Counter, Gauge, MetricRegistry};
pub use shard::{render_shard_table, ShardStats};
pub use slo::{SloCheck, SloOutcome, SloThresholds};
pub use stage::{PlanStage, StageLatency};
pub use table::{fmt2, TextTable};
pub use timing::{PhaseBreakdown, PhaseTimer};
pub use trace::{
    render_span_tree, SlowEntry, SlowLog, Span, SpanRecorder, SpanTag, Stage, TraceId, TraceSink,
    ROOT_SPAN_ID,
};
