//! Service-level-objective thresholds and verdicts for open-loop benchmarks.
//!
//! A closed-loop load generator hides overload: clients wait for each reply
//! before sending the next request, so an overwhelmed server simply receives
//! fewer requests and its reported latencies stay flattering.  The open-loop
//! harnesses in `opaq-serve`/`opaq-net` instead hold a fixed offered rate and
//! measure each operation from its *scheduled* send time — and this module is
//! where those coordinated-omission-safe measurements meet the operator's
//! declared objectives: "p99 under 5 ms, p999 under 20 ms, error rate under
//! 0.1 %, shed rate under 1 %".
//!
//! [`SloThresholds`] declares the objectives (any subset; unset ones are not
//! checked).  [`SloThresholds::evaluate`] compares them against a
//! [`LatencySnapshot`] plus observed error/shed rates and returns an
//! [`SloOutcome`] — one [`SloCheck`] per declared objective with the
//! threshold, the observation, and a breached flag — which renders as the
//! same fixed-width [`TextTable`] every other experiment report uses, and
//! whose [`SloOutcome::breaches`] count is what `opaq serve-bench` turns into
//! a nonzero exit status.

use crate::{LatencySnapshot, TextTable};
use std::time::Duration;

/// Declared service-level objectives.  Every field is optional; only the
/// set ones produce checks in [`Self::evaluate`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SloThresholds {
    /// Maximum acceptable median latency.
    pub p50: Option<Duration>,
    /// Maximum acceptable 99th-percentile latency.
    pub p99: Option<Duration>,
    /// Maximum acceptable 99.9th-percentile latency.
    pub p999: Option<Duration>,
    /// Maximum acceptable error rate (failed ops / total ops, in `[0, 1]`).
    pub max_error_rate: Option<f64>,
    /// Maximum acceptable shed rate (rejected ops / total ops, in `[0, 1]`).
    pub max_shed_rate: Option<f64>,
}

impl SloThresholds {
    /// Whether no objective at all has been declared.
    pub fn is_empty(&self) -> bool {
        self.p50.is_none()
            && self.p99.is_none()
            && self.p999.is_none()
            && self.max_error_rate.is_none()
            && self.max_shed_rate.is_none()
    }

    /// Compare the declared objectives against an observed latency
    /// distribution and error/shed rates (fractions in `[0, 1]`).
    ///
    /// An observation exactly *at* its threshold passes — "p99 under 5 ms"
    /// with a recorded p99 of exactly 5 ms is a met objective, not a breach.
    pub fn evaluate(
        &self,
        latency: &LatencySnapshot,
        error_rate: f64,
        shed_rate: f64,
    ) -> SloOutcome {
        let mut checks = Vec::new();
        let mut latency_check =
            |name: &'static str, limit: Option<Duration>, observed: Duration| {
                if let Some(limit) = limit {
                    checks.push(SloCheck {
                        name,
                        threshold: format!("{limit:?}"),
                        observed: format!("{observed:?}"),
                        breached: observed > limit,
                    });
                }
            };
        latency_check("p50", self.p50, latency.p50);
        latency_check("p99", self.p99, latency.p99);
        latency_check("p999", self.p999, latency.p999);
        let mut rate_check = |name: &'static str, limit: Option<f64>, observed: f64| {
            if let Some(limit) = limit {
                checks.push(SloCheck {
                    name,
                    threshold: format!("{:.4}%", limit * 100.0),
                    observed: format!("{:.4}%", observed * 100.0),
                    breached: observed > limit,
                });
            }
        };
        rate_check("error rate", self.max_error_rate, error_rate);
        rate_check("shed rate", self.max_shed_rate, shed_rate);
        SloOutcome { checks }
    }
}

/// One declared objective compared against its observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloCheck {
    /// Which objective this is (`"p99"`, `"error rate"`, ...).
    pub name: &'static str,
    /// The declared limit, pre-formatted for display.
    pub threshold: String,
    /// The observation, pre-formatted for display.
    pub observed: String,
    /// Whether the observation exceeded the limit.
    pub breached: bool,
}

/// The result of evaluating every declared objective.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SloOutcome {
    /// One entry per declared objective, in declaration order.
    pub checks: Vec<SloCheck>,
}

impl SloOutcome {
    /// Number of breached objectives.
    pub fn breaches(&self) -> usize {
        self.checks.iter().filter(|c| c.breached).count()
    }

    /// Whether any objective was breached.
    pub fn is_breached(&self) -> bool {
        self.breaches() > 0
    }

    /// Render the checks as a fixed-width table (empty string when no
    /// objectives were declared).
    pub fn render(&self, title: &str) -> String {
        if self.checks.is_empty() {
            return String::new();
        }
        let mut table =
            TextTable::new(title).header(["objective", "threshold", "observed", "verdict"]);
        for check in &self.checks {
            table.row([
                check.name.to_string(),
                check.threshold.clone(),
                check.observed.clone(),
                if check.breached { "BREACH" } else { "ok" }.to_string(),
            ]);
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LatencyHistogram;

    fn snapshot_around_1ms() -> LatencySnapshot {
        let h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record_nanos(i * 1_000); // 1µs .. 1ms
        }
        h.snapshot()
    }

    #[test]
    fn empty_thresholds_declare_no_checks_and_never_breach() {
        let slo = SloThresholds::default();
        assert!(slo.is_empty());
        let outcome = slo.evaluate(&snapshot_around_1ms(), 0.5, 0.5);
        assert!(outcome.checks.is_empty());
        assert_eq!(outcome.breaches(), 0);
        assert!(!outcome.is_breached());
        assert_eq!(outcome.render("slo"), "");
    }

    #[test]
    fn latency_objectives_breach_only_when_exceeded() {
        let snap = snapshot_around_1ms(); // p99 ≈ 1ms
        let generous = SloThresholds {
            p99: Some(Duration::from_secs(1)),
            ..Default::default()
        };
        assert!(!generous.evaluate(&snap, 0.0, 0.0).is_breached());

        let strict = SloThresholds {
            p50: Some(Duration::from_nanos(1)),
            p99: Some(Duration::from_nanos(1)),
            p999: Some(Duration::from_nanos(1)),
            ..Default::default()
        };
        let outcome = strict.evaluate(&snap, 0.0, 0.0);
        assert_eq!(outcome.checks.len(), 3);
        assert_eq!(outcome.breaches(), 3);

        // Exactly at the limit is a met objective.
        let at_limit = SloThresholds {
            p999: Some(snap.p999),
            ..Default::default()
        };
        assert!(!at_limit.evaluate(&snap, 0.0, 0.0).is_breached());
    }

    #[test]
    fn rate_objectives_use_fractions_and_pass_at_the_boundary() {
        let snap = snapshot_around_1ms();
        let slo = SloThresholds {
            max_error_rate: Some(0.001),
            max_shed_rate: Some(0.01),
            ..Default::default()
        };
        assert!(!slo.evaluate(&snap, 0.001, 0.01).is_breached());
        let outcome = slo.evaluate(&snap, 0.0011, 0.0);
        assert_eq!(outcome.breaches(), 1);
        assert_eq!(outcome.checks[0].name, "error rate");
        assert!(outcome.checks[0].breached);
        assert!(!outcome.checks[1].breached);
        assert_eq!(slo.evaluate(&snap, 0.0, 0.5).breaches(), 1);
    }

    #[test]
    fn render_lists_every_declared_objective_with_verdicts() {
        let snap = snapshot_around_1ms();
        let slo = SloThresholds {
            p99: Some(Duration::from_nanos(1)),
            max_error_rate: Some(1.0),
            ..Default::default()
        };
        let rendered = slo.evaluate(&snap, 0.0, 0.0).render("slo verdicts");
        assert!(rendered.contains("slo verdicts"));
        assert!(rendered.contains("p99"));
        assert!(rendered.contains("error rate"));
        assert!(rendered.contains("BREACH"));
        assert!(rendered.contains("ok"));
    }
}
