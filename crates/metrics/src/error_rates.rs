//! The paper's three relative error rates (§2.4, Figure 2).

use crate::GroundTruth;
use serde::{Deserialize, Serialize};

/// The estimated bounds for one quantile, as seen by the metrics layer.
///
/// Estimators in other crates have richer result types; the metrics crate
/// only needs the two bounding values, so experiments convert into this
/// minimal view.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantileBoundsView {
    /// Quantile fraction φ in `(0, 1)`.
    pub phi: f64,
    /// Estimated lower bound `e_l` (a value from the dataset's domain).
    pub lower: u64,
    /// Estimated upper bound `e_u`.
    pub upper: u64,
}

/// The three error rates for one estimator run over `q`-quantiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelativeErrorRates {
    /// Per-quantile RER_A values (percent), in φ order (`1/q … (q−1)/q`).
    pub rer_a_per_quantile: Vec<f64>,
    /// RER_L (percent): maximum over quantile gaps.
    pub rer_l: f64,
    /// RER_N (percent): maximum over quantiles.
    pub rer_n: f64,
}

impl RelativeErrorRates {
    /// The maximum per-quantile RER_A (useful as a single summary number).
    pub fn rer_a_max(&self) -> f64 {
        self.rer_a_per_quantile.iter().copied().fold(0.0, f64::max)
    }

    /// The mean per-quantile RER_A.
    pub fn rer_a_mean(&self) -> f64 {
        if self.rer_a_per_quantile.is_empty() {
            return 0.0;
        }
        self.rer_a_per_quantile.iter().sum::<f64>() / self.rer_a_per_quantile.len() as f64
    }
}

/// A full error report: the estimated bounds plus the derived error rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorReport {
    /// The bounds the estimator produced.
    pub bounds: Vec<QuantileBoundsView>,
    /// The derived error rates.
    pub rates: RelativeErrorRates,
}

/// Compute all three error rates from ground truth and estimated bounds.
///
/// `bounds` must contain one entry per quantile in increasing φ order; for
/// the paper's dectile experiments that is nine entries with
/// `φ = 0.1, 0.2, …, 0.9` (i.e. `q = bounds.len() + 1`).
///
/// # Panics
/// Panics if `bounds` is empty, if any `lower > upper`, or if the φ values
/// are not strictly increasing inside `(0, 1)`.
pub fn compute_error_rates(
    truth: &GroundTruth,
    bounds: &[QuantileBoundsView],
) -> RelativeErrorRates {
    assert!(
        !bounds.is_empty(),
        "at least one quantile bound is required"
    );
    for b in bounds {
        assert!(
            b.lower <= b.upper,
            "lower bound {} exceeds upper bound {}",
            b.lower,
            b.upper
        );
        assert!(
            b.phi > 0.0 && b.phi < 1.0,
            "phi {} must be inside (0, 1)",
            b.phi
        );
    }
    for pair in bounds.windows(2) {
        assert!(
            pair[0].phi < pair[1].phi,
            "phi values must be strictly increasing"
        );
    }

    let n = truth.n() as f64;
    let q = bounds.len() as u64 + 1;

    // --- RER_A: per-quantile (Ne - Nt)/n * 100 ------------------------------
    let rer_a_per_quantile: Vec<f64> = bounds
        .iter()
        .map(|b| {
            let ne = truth.count_in_closed_range(b.lower, b.upper) as f64;
            let true_value = truth.quantile_value(b.phi);
            let nt = truth.count_eq(true_value) as f64;
            // Duplicates of the exact quantile value are "free": the interval
            // cannot help containing them, so the paper subtracts them.
            ((ne - nt).max(0.0) / n) * 100.0
        })
        .collect();

    // --- RER_L: successive-gap distortion -----------------------------------
    // N_i  = elements between true i-th and (i+1)-th quantiles,
    // NL_i = elements between estimated lower bounds of i-th and (i+1)-th,
    // NU_i = same for upper bounds.  Gaps are measured in rank space.
    let mut rer_l = 0.0f64;
    for w in bounds.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        let ni = rank_gap(
            truth,
            truth.quantile_value(a.phi),
            truth.quantile_value(b.phi),
        );
        let nli = rank_gap(truth, a.lower, b.lower);
        let nui = rank_gap(truth, a.upper, b.upper);
        if ni > 0.0 {
            rer_l = rer_l.max((ni - nli).abs() / ni * 100.0);
            rer_l = rer_l.max((ni - nui).abs() / ni * 100.0);
        }
    }

    // --- RER_N: per-quantile displacement normalised by n/q -----------------
    let per_quantile_mass = n / q as f64;
    let mut rer_n = 0.0f64;
    for b in bounds {
        let true_value = truth.quantile_value(b.phi);
        let dli = rank_gap(truth, b.lower, true_value);
        let dui = rank_gap(truth, true_value, b.upper);
        rer_n = rer_n.max(dli / per_quantile_mass * 100.0);
        rer_n = rer_n.max(dui / per_quantile_mass * 100.0);
    }

    RelativeErrorRates {
        rer_a_per_quantile,
        rer_l,
        rer_n,
    }
}

/// Number of elements separating two values, measured as the difference of
/// their lower ranks (symmetric: the order of the arguments does not matter).
fn rank_gap(truth: &GroundTruth, a: u64, b: u64) -> f64 {
    let ra = truth.rank_lt(a) as f64;
    let rb = truth.rank_lt(b) as f64;
    (ra - rb).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_truth(n: u64) -> GroundTruth {
        GroundTruth::from_sorted((1..=n).collect())
    }

    #[test]
    fn perfect_estimates_have_zero_error() {
        let truth = uniform_truth(1000);
        let bounds: Vec<QuantileBoundsView> = (1..10)
            .map(|i| {
                let v = truth.quantile_value(i as f64 / 10.0);
                QuantileBoundsView {
                    phi: i as f64 / 10.0,
                    lower: v,
                    upper: v,
                }
            })
            .collect();
        let rates = compute_error_rates(&truth, &bounds);
        assert!(rates.rer_a_max() < 1e-9, "{rates:?}");
        assert_eq!(rates.rer_l, 0.0);
        assert_eq!(rates.rer_n, 0.0);
    }

    #[test]
    fn wide_bounds_increase_rer_a() {
        let truth = uniform_truth(1000);
        // A +-10 element window around each true dectile: Ne ~ 21, Nt = 1.
        let bounds: Vec<QuantileBoundsView> = (1..10)
            .map(|i| {
                let v = truth.quantile_value(i as f64 / 10.0);
                QuantileBoundsView {
                    phi: i as f64 / 10.0,
                    lower: v - 10,
                    upper: v + 10,
                }
            })
            .collect();
        let rates = compute_error_rates(&truth, &bounds);
        // (21 - 1)/1000 * 100 = 2.0 for every dectile.
        for &a in &rates.rer_a_per_quantile {
            assert!((a - 2.0).abs() < 1e-9, "{a}");
        }
        // Displacement of 10 elements against n/q = 100 -> 10%.
        assert!((rates.rer_n - 10.0).abs() < 1e-9, "{}", rates.rer_n);
    }

    #[test]
    fn shifted_bounds_affect_rer_l() {
        let truth = uniform_truth(1000);
        // Lower bounds shifted so that the gap between successive lower
        // bounds is 80 instead of 100 for one pair.
        let mk = |phi: f64, lower: u64, upper: u64| QuantileBoundsView { phi, lower, upper };
        let bounds = vec![
            mk(0.1, 100, 100),
            mk(0.2, 180, 200), // gap from 100 to 180 = 80 (vs true 100)
            mk(0.3, 300, 300),
        ];
        let rates = compute_error_rates(&truth, &bounds);
        assert!(rates.rer_l >= 20.0 - 1e-9, "{}", rates.rer_l);
    }

    #[test]
    fn duplicates_of_exact_quantile_are_not_charged() {
        // 100 copies of each value 1..=10; true median value is 5.
        let mut data = Vec::new();
        for v in 1..=10u64 {
            data.extend(std::iter::repeat_n(v, 100));
        }
        let truth = GroundTruth::new(&data);
        let median = truth.quantile_value(0.5);
        let bounds = vec![QuantileBoundsView {
            phi: 0.5,
            lower: median,
            upper: median,
        }];
        let rates = compute_error_rates(&truth, &bounds);
        // Ne = 100 (all copies of the median value), Nt = 100 -> RER_A = 0.
        assert!(rates.rer_a_max() < 1e-9);
    }

    #[test]
    fn summary_helpers() {
        let rates = RelativeErrorRates {
            rer_a_per_quantile: vec![0.1, 0.3, 0.2],
            rer_l: 1.0,
            rer_n: 2.0,
        };
        assert!((rates.rer_a_max() - 0.3).abs() < 1e-12);
        assert!((rates.rer_a_mean() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one quantile")]
    fn empty_bounds_panic() {
        compute_error_rates(&uniform_truth(10), &[]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_phis_panic() {
        let truth = uniform_truth(10);
        let b = QuantileBoundsView {
            phi: 0.5,
            lower: 5,
            upper: 5,
        };
        let a = QuantileBoundsView {
            phi: 0.2,
            lower: 2,
            upper: 2,
        };
        compute_error_rates(&truth, &[b, a]);
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn inverted_bounds_panic() {
        let truth = uniform_truth(10);
        compute_error_rates(
            &truth,
            &[QuantileBoundsView {
                phi: 0.5,
                lower: 6,
                upper: 5,
            }],
        );
    }
}
