//! Interleaving tests for the seqlock span ring.
//!
//! The property under test: **a reader never observes a torn span**.  Every
//! writer encodes all of a span's fields as a pure function of
//! `(trace, span_id)`, so any mixture of two writes — fields from different
//! spans surfacing in one `Span` — breaks the encoding and is caught by a
//! field-by-field check.  Readers hammer `spans()` while writers wrap the
//! ring thousands of times; the proptest case additionally randomises ring
//! capacity, writer count, and spans-per-writer so the interleaving space is
//! explored across seeds rather than at one hand-picked schedule.

use opaq_metrics::{Span, SpanRecorder, SpanTag, Stage, TraceId};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const STAGES: [Stage; 13] = Stage::ALL;

const TAGS: [SpanTag; 7] = [
    SpanTag::Untagged,
    SpanTag::Hit,
    SpanTag::ReloadFromSpill,
    SpanTag::RefreshTriggered,
    SpanTag::Degraded,
    SpanTag::Shed,
    SpanTag::Error,
];

/// Writer `w`'s trace id: distinct, nonzero, and invertible from the span.
fn trace_of(w: u64) -> TraceId {
    TraceId::from_raw(0x1000 + w).unwrap()
}

/// The one legal span writer `w` may record under sequence number `i`.
/// Every field is derived from `(w, i)`, so a torn read cannot reproduce it.
fn span_of(w: u64, i: u64) -> Span {
    let start = (w << 32) | i;
    Span {
        trace: trace_of(w),
        span_id: i as u32,
        parent: (i / 2) as u32,
        stage: STAGES[((w + i) % STAGES.len() as u64) as usize],
        tag: TAGS[((w * 7 + i) % TAGS.len() as u64) as usize],
        start_nanos: start,
        duration_nanos: start ^ 0x00de_ad00_beef_0000,
    }
}

/// Assert `span` is exactly some `span_of(w, i)` for a writer in `0..writers`.
fn assert_untorn(span: &Span, writers: u64) {
    let w = span.trace.as_u64().checked_sub(0x1000).unwrap_or(u64::MAX);
    assert!(
        w < writers,
        "span carries a trace id no writer ever used: {span:?}"
    );
    let expected = span_of(w, u64::from(span.span_id));
    assert_eq!(*span, expected, "torn span: fields mix more than one write");
}

/// `writers` threads each record `per_writer` spans into a `capacity`-slot
/// ring while `readers` threads snapshot continuously; every observed span —
/// mid-flight and at the end — must be exactly one that some writer wrote.
fn hammer(capacity: usize, writers: u64, per_writer: u64, readers: usize) {
    let recorder = Arc::new(SpanRecorder::new(capacity));
    let done = Arc::new(AtomicBool::new(false));

    let reader_handles: Vec<_> = (0..readers)
        .map(|_| {
            let recorder = Arc::clone(&recorder);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut observed = 0u64;
                while !done.load(Ordering::Relaxed) {
                    for span in recorder.spans() {
                        assert_untorn(&span, writers);
                        observed += 1;
                    }
                }
                observed
            })
        })
        .collect();

    let writer_handles: Vec<_> = (0..writers)
        .map(|w| {
            let recorder = Arc::clone(&recorder);
            std::thread::spawn(move || {
                for i in 0..per_writer {
                    recorder.record(&span_of(w, i));
                }
            })
        })
        .collect();

    for handle in writer_handles {
        handle.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    for handle in reader_handles {
        handle.join().unwrap();
    }

    // Quiescent state: every slot readable, every span legal, and the
    // write accounting closes exactly.
    let survivors = recorder.spans();
    assert!(survivors.len() <= capacity);
    for span in &survivors {
        assert_untorn(span, writers);
    }
    assert_eq!(
        recorder.recorded() + recorder.dropped(),
        writers * per_writer,
        "recorded + dropped must account for every record() call"
    );
    assert!(
        recorder.recorded() > 0,
        "probing never succeeded — the ring made no progress"
    );
}

#[test]
fn a_full_ring_overwrites_oldest_and_stays_well_formed() {
    let recorder = SpanRecorder::new(8);
    for i in 0..100 {
        recorder.record(&span_of(0, i));
    }
    // Single-threaded, nothing is ever mid-write: no drops, full accounting.
    assert_eq!(recorder.recorded(), 100);
    assert_eq!(recorder.dropped(), 0);
    let spans = recorder.spans();
    assert_eq!(spans.len(), 8, "every slot of a wrapped ring is readable");
    for span in &spans {
        assert_untorn(span, 1);
        // Overwrite-oldest: only the last `capacity` writes survive.
        assert!(
            u64::from(span.span_id) >= 92,
            "stale span survived: {span:?}"
        );
    }
}

#[test]
fn per_trace_lookup_filters_and_orders_by_start() {
    let recorder = SpanRecorder::new(64);
    for w in 0..4 {
        for i in 0..10 {
            recorder.record(&span_of(w, i));
        }
    }
    let spans = recorder.trace(trace_of(2));
    assert_eq!(spans.len(), 10);
    for (i, span) in spans.iter().enumerate() {
        assert_eq!(*span, span_of(2, i as u64), "wrong order or foreign span");
    }
    assert!(recorder.trace(trace_of(99)).is_empty());
}

#[test]
fn concurrent_writers_and_readers_never_observe_a_torn_span() {
    // Tiny ring, heavy wrap pressure: every write contends for 8 slots.
    hammer(8, 4, 5_000, 2);
    // Ring larger than the working set: drops should be impossible and the
    // survivors are exactly the union of all writes.
    let recorder = Arc::new(SpanRecorder::new(1024));
    let handles: Vec<_> = (0..4)
        .map(|w| {
            let recorder = Arc::clone(&recorder);
            std::thread::spawn(move || {
                for i in 0..100 {
                    recorder.record(&span_of(w, i));
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(recorder.recorded(), 400);
    assert_eq!(
        recorder.dropped(),
        0,
        "an uncontended-capacity ring dropped"
    );
    let mut seen: Vec<(u64, u32)> = recorder
        .spans()
        .iter()
        .map(|s| {
            assert_untorn(s, 4);
            (s.trace.as_u64(), s.span_id)
        })
        .collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(
        seen.len(),
        400,
        "a write vanished without being overwritten"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomised schedules: capacity, writer count, and volume all vary, so
    /// wrap pressure ranges from none to ~hundredfold across seeds.
    #[test]
    fn random_interleavings_stay_well_formed(
        capacity in 1usize..48,
        writers in 1u64..5,
        per_writer in 1u64..800,
    ) {
        hammer(capacity, writers, per_writer, 1);
    }
}
