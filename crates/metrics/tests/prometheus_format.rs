//! A strict Prometheus text-exposition parser, run against
//! [`MetricRegistry::render`] output — and, when `OPAQ_METRICS_FILE` is
//! set, against a real `/metrics` scrape captured by CI's obs-smoke job.
//!
//! "Strict" means structural validity, not just grep-ability: every sample
//! belongs to a family announced by `# HELP` + `# TYPE` *before* it (the
//! pre-registration/schema-stability contract), names and labels match the
//! Prometheus charsets, label values use only the three legal escapes,
//! histogram buckets are cumulative with ascending `le` and `+Inf == _count`,
//! and the body ends in exactly one trailing newline.

use opaq_metrics::{LatencyHistogram, MetricRegistry};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parse `{k="v",...}`; returns the label pairs (unescaped) or an error.
fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("malformed label block {s:?}"))?;
    let mut labels = Vec::new();
    let mut chars = inner.chars().peekable();
    loop {
        let mut name = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            name.push(c);
            chars.next();
        }
        if chars.next() != Some('=') || chars.next() != Some('"') {
            return Err(format!("label {name:?} in {s:?} is not followed by =\""));
        }
        if !valid_label_name(&name) {
            return Err(format!("invalid label name {name:?} in {s:?}"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => {
                        return Err(format!("illegal escape \\{other:?} in label block {s:?}"))
                    }
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(format!("unterminated label value in {s:?}")),
            }
        }
        labels.push((name, value));
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(c) => return Err(format!("unexpected {c:?} after a label value in {s:?}")),
        }
    }
    Ok(labels)
}

/// A parsed sample: `(name, labels, value)`.
type Sample = (String, Vec<(String, String)>, f64);

/// Split a sample line into `(name, labels, value)`.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (series, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("sample line without a value: {line:?}"))?;
    let value: f64 = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v
            .parse()
            .map_err(|e| format!("unparseable sample value {v:?} on {line:?}: {e}"))?,
    };
    let (name, labels) = match series.find('{') {
        Some(brace) => (series[..brace].to_string(), parse_labels(&series[brace..])?),
        None => (series.to_string(), Vec::new()),
    };
    if !valid_metric_name(&name) {
        return Err(format!("invalid metric name {name:?} on {line:?}"));
    }
    Ok((name, labels, value))
}

#[derive(Default)]
struct Report {
    families: usize,
    samples: usize,
    kinds: HashMap<String, String>,
}

/// Validate a full exposition body; returns family/sample tallies.
fn validate(text: &str) -> Result<Report, String> {
    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".into());
    }
    if text.ends_with("\n\n") {
        return Err("exposition ends with a blank line".into());
    }
    let mut report = Report::default();
    // family name -> kind; HELP seen awaiting its TYPE line.
    let mut pending_help: Option<String> = None;
    // (family, non-le labels) -> (ascending le bounds, cumulative counts)
    type BucketKey = (String, Vec<(String, String)>);
    let mut buckets: HashMap<BucketKey, Vec<(f64, f64)>> = HashMap::new();
    let mut counts: HashMap<BucketKey, f64> = HashMap::new();

    for line in text.lines() {
        if line.is_empty() {
            return Err("blank line inside the exposition".into());
        }
        if let Some(comment) = line.strip_prefix("# ") {
            let mut parts = comment.splitn(3, ' ');
            match (parts.next(), parts.next(), parts.next()) {
                (Some("HELP"), Some(name), help) => {
                    if !valid_metric_name(name) {
                        return Err(format!("HELP for invalid name {name:?}"));
                    }
                    if report.kinds.contains_key(name) {
                        return Err(format!("duplicate HELP for {name}"));
                    }
                    if help.is_none_or(str::is_empty) {
                        return Err(format!("HELP for {name} has no text"));
                    }
                    if pending_help.is_some() {
                        return Err(format!("HELP for {name} while another HELP awaits TYPE"));
                    }
                    pending_help = Some(name.to_string());
                }
                (Some("TYPE"), Some(name), Some(kind)) => {
                    if pending_help.as_deref() != Some(name) {
                        return Err(format!(
                            "TYPE for {name} without an immediately-preceding HELP"
                        ));
                    }
                    pending_help = None;
                    if !matches!(kind, "counter" | "gauge" | "histogram") {
                        return Err(format!("unknown TYPE {kind:?} for {name}"));
                    }
                    report.kinds.insert(name.to_string(), kind.to_string());
                    report.families += 1;
                }
                _ => return Err(format!("unrecognized comment line {line:?}")),
            }
            continue;
        }
        if pending_help.is_some() {
            return Err(format!("sample {line:?} between a HELP and its TYPE"));
        }
        let (name, labels, value) = parse_sample(line)?;
        report.samples += 1;
        // Resolve the sample to its family: exact for scalars, suffixed for
        // histograms.  A sample with no announced family is a schema leak.
        let family = if let Some(kind) = report.kinds.get(&name) {
            if kind == "histogram" {
                return Err(format!("bare sample {name} for a histogram family"));
            }
            name.clone()
        } else {
            let base = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suffix| name.strip_suffix(suffix))
                .ok_or_else(|| format!("sample {name} has no HELP/TYPE before it"))?;
            if report.kinds.get(base).map(String::as_str) != Some("histogram") {
                return Err(format!("sample {name} has no HELP/TYPE before it"));
            }
            base.to_string()
        };
        let le = labels.iter().find(|(k, _)| k == "le").cloned();
        let plain: Vec<(String, String)> =
            labels.iter().filter(|(k, _)| k != "le").cloned().collect();
        if name.ends_with("_bucket") && report.kinds.get(&family).is_some_and(|k| k == "histogram")
        {
            let (_, le) = le.ok_or_else(|| format!("bucket sample without le: {line:?}"))?;
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse()
                    .map_err(|e| format!("unparseable le {le:?} on {line:?}: {e}"))?
            };
            buckets
                .entry((family.clone(), plain))
                .or_default()
                .push((bound, value));
        } else {
            if le.is_some() {
                return Err(format!("`le` label outside a bucket sample: {line:?}"));
            }
            if name.ends_with("_count") && report.kinds[&family] == "histogram" {
                counts.insert((family.clone(), plain), value);
            }
            if value < 0.0 && report.kinds[&family] == "counter" {
                return Err(format!("negative counter sample {line:?}"));
            }
        }
    }
    if let Some(name) = pending_help {
        return Err(format!("HELP for {name} never followed by TYPE"));
    }
    for ((family, labels), series) in &buckets {
        let mut last_bound = f64::NEG_INFINITY;
        let mut last_count = 0.0;
        for (bound, count) in series {
            if *bound <= last_bound {
                return Err(format!("{family}{labels:?}: le bounds not ascending"));
            }
            if *count < last_count {
                return Err(format!("{family}{labels:?}: bucket counts not cumulative"));
            }
            (last_bound, last_count) = (*bound, *count);
        }
        match series.last() {
            Some((bound, count)) if bound.is_infinite() => {
                let total = counts.get(&(family.clone(), labels.clone())).copied();
                if total != Some(*count) {
                    return Err(format!(
                        "{family}{labels:?}: +Inf bucket {count} != _count {total:?}"
                    ));
                }
            }
            _ => return Err(format!("{family}{labels:?}: missing +Inf bucket")),
        }
    }
    Ok(report)
}

#[test]
fn registry_output_passes_the_strict_parser() {
    let reg = MetricRegistry::new();
    let c = reg.counter("opaq_http_requests", "Total requests.");
    c.add(41);
    reg.gauge_with(
        "opaq_replica_breaker_state",
        "Breaker state per replica.",
        &[("peer", "127.0.0.1:7001")],
    )
    .set(1);
    // A label value exercising every legal escape.
    reg.gauge_with(
        "opaq_replica_breaker_state",
        "Breaker state per replica.",
        &[("peer", "a\"b\\c\nd")],
    )
    .set(2);
    let hist = Arc::new(LatencyHistogram::new());
    hist.record(Duration::from_micros(3));
    hist.record(Duration::from_millis(7));
    hist.record(Duration::from_secs(30)); // beyond the ladder: +Inf only
    reg.histogram(
        "opaq_request_duration_nanos",
        "Request duration.",
        Arc::clone(&hist),
    );
    reg.histogram_with(
        "opaq_plan_stage_duration_nanos",
        "Stage duration.",
        &[("stage", "fetch")],
        hist,
    );

    let text = reg.render();
    let report = validate(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
    assert_eq!(report.families, 4, "{text}");
    assert_eq!(report.kinds["opaq_http_requests"], "counter");
    assert_eq!(report.kinds["opaq_request_duration_nanos"], "histogram");
}

#[test]
fn the_parser_rejects_structural_violations() {
    // No trailing newline.
    assert!(validate("# HELP a A.\n# TYPE a counter\na 1").is_err());
    // Sample before its family is announced.
    assert!(validate("a 1\n# HELP a A.\n# TYPE a counter\n").is_err());
    // TYPE without HELP.
    assert!(validate("# TYPE a counter\na 1\n").is_err());
    // Unknown kind.
    assert!(validate("# HELP a A.\n# TYPE a summary\na 1\n").is_err());
    // Duplicate HELP.
    assert!(
        validate("# HELP a A.\n# TYPE a counter\na 1\n# HELP a A.\n# TYPE a counter\n").is_err()
    );
    // Illegal escape in a label value.
    assert!(validate("# HELP a A.\n# TYPE a counter\na{x=\"\\t\"} 1\n").is_err());
    // `le` outside a histogram bucket.
    assert!(validate("# HELP a A.\n# TYPE a counter\na{le=\"1\"} 1\n").is_err());
    // Histogram without the +Inf bucket.
    assert!(validate(
        "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"
    )
    .is_err());
    // Non-cumulative buckets.
    assert!(validate(
        "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"2\"} 1\n\
         h_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n"
    )
    .is_err());
    // +Inf disagreeing with _count.
    assert!(validate(
        "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\n\
         h_sum 1\nh_count 3\n"
    )
    .is_err());
    // A well-formed body passes.
    validate(
        "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\n\
         h_sum 40\nh_count 2\n",
    )
    .unwrap();
}

/// CI hook: when `OPAQ_METRICS_FILE` points at a captured `/metrics` body,
/// hold the *live server's* exposition to the same strict parser, and
/// require the core serving families to be present in the schema.
#[test]
fn scraped_metrics_file_is_valid_when_provided() {
    let Ok(path) = std::env::var("OPAQ_METRICS_FILE") else {
        return;
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("could not read OPAQ_METRICS_FILE {path}: {e}"));
    let report = validate(&text).unwrap_or_else(|e| panic!("{path} failed validation: {e}"));
    for family in [
        "opaq_http_requests",
        "opaq_request_duration_nanos",
        "opaq_plan_stage_duration_nanos",
        "opaq_trace_spans_recorded",
        "opaq_catalog_publishes",
        "opaq_catalog_entries",
    ] {
        assert!(
            report.kinds.contains_key(family),
            "{path} is missing family {family}"
        );
    }
    assert_eq!(report.kinds["opaq_request_duration_nanos"], "histogram");
    assert!(
        report.samples > report.families,
        "{path} has empty families"
    );
}
