//! # opaq — One-Pass Algorithm for Quantiles (VLDB 1997), reproduced in Rust
//!
//! This facade crate re-exports the whole OPAQ workspace behind a single
//! dependency, so downstream users can write `opaq::...` without caring
//! which internal crate a type lives in:
//!
//! * [`core`] ([`opaq_core`]) — the OPAQ algorithm itself: sample phase,
//!   quantile phase, deterministic error bounds, exact second pass,
//!   incremental maintenance, rank estimation.
//! * [`select`] ([`opaq_select`]) — selection / multi-selection algorithms.
//! * [`storage`] ([`opaq_storage`]) — disk-resident run storage, I/O
//!   accounting and the disk cost model.
//! * [`datagen`] ([`opaq_datagen`]) — the paper's workload generators.
//! * [`metrics`] ([`opaq_metrics`]) — RER_A / RER_L / RER_N and timing.
//! * [`baselines`] ([`opaq_baselines`]) — the comparison algorithms.
//! * [`parallel`] ([`opaq_parallel`]) — parallel OPAQ on a simulated
//!   distributed-memory machine, plus [`ShardedOpaq`]: real multi-threaded
//!   sharded ingestion over any run store.
//! * [`serve`] ([`opaq_serve`]) — concurrent multi-tenant sketch serving:
//!   the versioned [`SketchCatalog`], typed [`QueryEngine`], background
//!   refresh and the load-generator harness.
//! * [`query`] ([`opaq_query`]) — the composable query pipeline:
//!   `fetch tenant-*/events | coalesce | quantile 0.5,0.99` expressions
//!   compiled to typed [`QueryPlan`]s and executed by a [`PlanExecutor`]
//!   against catalog snapshots, with full per-source provenance.
//! * [`net`] ([`opaq_net`]) — the HTTP/1.1 front-end over the serving
//!   layer: dependency-free server/client, versioned + freshness-tagged
//!   responses, `POST /v1/query` plans, `/metrics` exposition and the HTTP
//!   workload harness.
//!
//! The most common entry points are re-exported at the top level:
//!
//! ```
//! use opaq::{OpaqConfig, OpaqEstimator, MemRunStore};
//!
//! let data: Vec<u64> = (0..50_000u64).rev().collect();
//! let store = MemRunStore::new(data, 5_000);
//! let config = OpaqConfig::builder().run_length(5_000).sample_size(500).build()?;
//! let sketch = OpaqEstimator::new(config).build_sketch(&store)?;
//! let median = sketch.estimate(0.5)?;
//! assert!(median.lower <= 24_999 && 24_999 <= median.upper);
//! # Ok::<(), opaq::OpaqError>(())
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use opaq_baselines as baselines;
pub use opaq_core as core;
pub use opaq_datagen as datagen;
pub use opaq_metrics as metrics;
pub use opaq_net as net;
pub use opaq_parallel as parallel;
pub use opaq_query as query;
pub use opaq_select as select;
pub use opaq_serve as serve;
pub use opaq_storage as storage;

pub use opaq_baselines::StreamingEstimator;
pub use opaq_core::{
    exact_quantile, IncrementalOpaq, OpaqConfig, OpaqError, OpaqEstimator, OpaqResult,
    QuantileEstimate, QuantileSketch, TheoreticalBounds,
};
pub use opaq_datagen::DatasetSpec;
pub use opaq_metrics::{compute_error_rates, GroundTruth, QuantileBoundsView};
pub use opaq_parallel::{MergeAlgorithm, ParallelOpaq, ShardedIngestReport, ShardedOpaq};
pub use opaq_query::{PlanExecutor, QueryPlan};
pub use opaq_select::SelectionStrategy;
pub use opaq_serve::{QueryEngine, QueryRequest, SketchCatalog};
pub use opaq_storage::{DiskModel, FileRunStore, FileRunStoreBuilder, MemRunStore, RunStore};
